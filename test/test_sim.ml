(* Tests for the discrete-event simulation engine: time arithmetic,
   deterministic RNG, statistics, the event queue, and engine
   scheduling semantics. *)

let time_tests =
  let open Sim.Time in
  [
    Alcotest.test_case "unit constructors agree" `Quick (fun () ->
        Alcotest.(check int64) "1 us = 1000 ns" 1000L (to_ns (us 1.));
        Alcotest.(check int64) "1 ms" 1_000_000L (to_ns (ms 1.));
        Alcotest.(check int64) "1 s" 1_000_000_000L (to_ns (s 1.));
        Alcotest.(check int64) "1 min" 60_000_000_000L (to_ns (minutes 1.)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        let a = ms 2. and b = ms 3. in
        Alcotest.(check int64) "add" (to_ns (ms 5.)) (to_ns (add a b));
        Alcotest.(check int64) "sub" (to_ns (ms 1.)) (to_ns (sub b a));
        Alcotest.(check int64) "mul" (to_ns (ms 1.)) (to_ns (mul a 0.5)));
    Alcotest.test_case "comparisons" `Quick (fun () ->
        Alcotest.(check bool) "lt" true (ms 1. < ms 2.);
        Alcotest.(check bool) "ge" true (ms 2. >= ms 2.);
        Alcotest.(check bool) "max" true (equal (ms 2.) (max (ms 1.) (ms 2.))));
    Alcotest.test_case "infinity" `Quick (fun () ->
        Alcotest.(check bool) "is_infinite" true (is_infinite infinity);
        Alcotest.(check bool) "zero finite" false (is_infinite zero);
        Alcotest.(check bool) "inf > everything" true (infinity > s 1e9));
    Alcotest.test_case "pp picks a readable unit" `Quick (fun () ->
        Alcotest.(check string) "ns" "42ns" (to_string (ns 42));
        Alcotest.(check string) "us" "1.50us" (to_string (ns 1500));
        Alcotest.(check string) "ms" "2.00ms" (to_string (ms 2.));
        Alcotest.(check string) "s" "3.000s" (to_string (s 3.)));
    Alcotest.test_case "conversions round-trip" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "to_s" 1.5 (to_s (s 1.5));
        Alcotest.(check (float 1e-9)) "to_ms" 250. (to_ms (ms 250.));
        Alcotest.(check (float 1e-9)) "to_us" 7. (to_us (us 7.)));
  ]

let rng_tests =
  let open Sim.Rng in
  [
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let a = create 7 and b = create 7 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same stream" (int64 a) (int64 b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = create 7 and b = create 8 in
        Alcotest.(check bool) "diverge" false (Int64.equal (int64 a) (int64 b)));
    Alcotest.test_case "split streams are independent" `Quick (fun () ->
        let a = create 7 in
        let c = split a in
        let c' = copy c in
        (* drawing from a must not perturb c *)
        ignore (int64 a);
        Alcotest.(check int64) "c unaffected" (int64 c') (int64 c));
    Alcotest.test_case "int respects bound" `Quick (fun () ->
        let r = create 3 in
        for _ = 1 to 10_000 do
          let v = int r 17 in
          Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
        done);
    Alcotest.test_case "float respects bound" `Quick (fun () ->
        let r = create 3 in
        for _ = 1 to 1000 do
          let v = float r 2.5 in
          Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
        done);
    Alcotest.test_case "lognormal noise has mean ~1" `Quick (fun () ->
        let r = create 11 in
        let n = 20_000 in
        let acc = ref 0. in
        for _ = 1 to n do
          acc := !acc +. lognormal_noise r ~rsd:0.1
        done;
        let mean = !acc /. float_of_int n in
        Alcotest.(check bool) "mean close to 1" true (Float.abs (mean -. 1.) < 0.01));
    Alcotest.test_case "lognormal with rsd 0 is exactly 1" `Quick (fun () ->
        let r = create 11 in
        Alcotest.(check (float 0.)) "unity" 1. (lognormal_noise r ~rsd:0.));
    Alcotest.test_case "exponential has requested mean" `Quick (fun () ->
        let r = create 13 in
        let n = 50_000 in
        let acc = ref 0. in
        for _ = 1 to n do
          acc := !acc +. exponential r 5.
        done;
        let mean = !acc /. float_of_int n in
        Alcotest.(check bool) "mean ~5" true (Float.abs (mean -. 5.) < 0.15));
    Alcotest.test_case "shuffle permutes" `Quick (fun () ->
        let r = create 17 in
        let arr = Array.init 50 Fun.id in
        shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort Int.compare sorted;
        Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted);
  ]

let rng_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Rng.int always within bound" ~count:1000
         QCheck.(pair small_int (int_range 1 1_000_000))
         (fun (seed, bound) ->
           let r = Sim.Rng.create seed in
           let v = Sim.Rng.int r bound in
           v >= 0 && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Rng.uniform within interval" ~count:500
         QCheck.(triple small_int (float_range (-100.) 100.) (float_range 0.001 100.))
         (fun (seed, lo, width) ->
           let r = Sim.Rng.create seed in
           let v = Sim.Rng.uniform r lo (lo +. width) in
           v >= lo && v < lo +. width));
  ]

let stats_tests =
  let open Sim.Stats in
  [
    Alcotest.test_case "mean and stddev" `Quick (fun () ->
        let t = of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
        Alcotest.(check (float 1e-9)) "mean" 5. (mean t);
        Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 (stddev t));
    Alcotest.test_case "empty accumulator" `Quick (fun () ->
        let t = create () in
        Alcotest.(check int) "count" 0 (count t);
        Alcotest.(check bool) "mean nan" true (Float.is_nan (mean t)));
    Alcotest.test_case "rsd" `Quick (fun () ->
        let t = of_list [ 10.; 10.; 10. ] in
        Alcotest.(check (float 1e-9)) "zero spread" 0. (rsd t));
    Alcotest.test_case "min max sum" `Quick (fun () ->
        let t = of_list [ 3.; 1.; 2. ] in
        Alcotest.(check (float 0.)) "min" 1. (min t);
        Alcotest.(check (float 0.)) "max" 3. (max t);
        Alcotest.(check (float 0.)) "sum" 6. (sum t));
    Alcotest.test_case "percentile cache invalidates on add" `Quick (fun () ->
        (* the sorted-sample array is cached between percentile calls;
           adding a sample must invalidate it, including one that sorts
           before everything already seen *)
        let t = of_list [ 5.; 1.; 3. ] in
        Alcotest.(check (float 1e-9)) "p100 primes cache" 5. (percentile t 100.);
        Alcotest.(check (float 1e-9)) "p0 reuses cache" 1. (percentile t 0.);
        add t 0.5;
        Alcotest.(check (float 1e-9)) "p0 sees new min" 0.5 (percentile t 0.);
        add t 9.;
        Alcotest.(check (float 1e-9)) "p100 sees new max" 9. (percentile t 100.);
        Alcotest.(check (float 1e-9)) "p50 consistent" 3. (percentile t 50.));
    Alcotest.test_case "percentiles interpolate" `Quick (fun () ->
        let t = of_list [ 1.; 2.; 3.; 4.; 5. ] in
        Alcotest.(check (float 1e-9)) "p0" 1. (percentile t 0.);
        Alcotest.(check (float 1e-9)) "p50" 3. (percentile t 50.);
        Alcotest.(check (float 1e-9)) "p100" 5. (percentile t 100.);
        Alcotest.(check (float 1e-9)) "p25" 2. (percentile t 25.));
    Alcotest.test_case "percent_change" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "+50%" 50. (percent_change ~from_:2. ~to_:3.);
        Alcotest.(check (float 1e-9)) "-25%" (-25.) (percent_change ~from_:4. ~to_:3.));
    Alcotest.test_case "add_time records nanoseconds" `Quick (fun () ->
        let t = create () in
        add_time t (Sim.Time.us 2.);
        Alcotest.(check (float 1e-9)) "2000 ns" 2000. (mean t));
    Alcotest.test_case "samples preserved in order" `Quick (fun () ->
        let t = of_list [ 5.; 1.; 3. ] in
        Alcotest.(check (list (float 0.))) "order" [ 5.; 1.; 3. ] (samples t));
    Alcotest.test_case "summary carries percentiles" `Quick (fun () ->
        let t = of_list (List.init 100 (fun i -> float_of_int (i + 1))) in
        let s = summary t in
        Alcotest.(check (float 1e-9)) "p50" (percentile t 50.) s.p50;
        Alcotest.(check (float 1e-9)) "p95" (percentile t 95.) s.p95;
        Alcotest.(check (float 1e-9)) "p99" (percentile t 99.) s.p99;
        Alcotest.(check bool) "ordered" true (s.p50 <= s.p95 && s.p95 <= s.p99);
        Alcotest.(check bool) "bounded" true (s.min <= s.p50 && s.p99 <= s.max));
    Alcotest.test_case "pp_summary prints percentiles" `Quick (fun () ->
        let s = summary (of_list [ 1.; 2.; 3.; 4.; 5. ]) in
        let text = Format.asprintf "%a" pp_summary s in
        let has needle =
          let n = String.length text and m = String.length needle in
          let rec scan i = i + m <= n && (String.sub text i m = needle || scan (i + 1)) in
          scan 0
        in
        List.iter
          (fun needle -> Alcotest.(check bool) (needle ^ " present") true (has needle))
          [ "p50="; "p95="; "p99="; "mean="; "stddev=" ]);
  ]

let stats_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Welford mean equals naive mean" ~count:300
         QCheck.(list_of_size Gen.(int_range 1 100) (float_range (-1e6) 1e6))
         (fun xs ->
           let t = Sim.Stats.of_list xs in
           let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
           Float.abs (Sim.Stats.mean t -. naive) <= 1e-6 *. Float.max 1. (Float.abs naive)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"percentile is monotone" ~count:300
         QCheck.(
           pair
             (list_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
             (pair (float_range 0. 100.) (float_range 0. 100.)))
         (fun (xs, (p1, p2)) ->
           let t = Sim.Stats.of_list xs in
           let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
           Sim.Stats.percentile t lo <= Sim.Stats.percentile t hi +. 1e-9));
  ]

let queue_tests =
  let open Sim.Event_queue in
  [
    Alcotest.test_case "pops in time order" `Quick (fun () ->
        let q = create () in
        ignore (push q (Sim.Time.ms 3.) "c");
        ignore (push q (Sim.Time.ms 1.) "a");
        ignore (push q (Sim.Time.ms 2.) "b");
        let pop_payload () = match pop q with Some (_, p) -> p | None -> "?" in
        Alcotest.(check string) "first" "a" (pop_payload ());
        Alcotest.(check string) "second" "b" (pop_payload ());
        Alcotest.(check string) "third" "c" (pop_payload ()));
    Alcotest.test_case "ties break by insertion order" `Quick (fun () ->
        let q = create () in
        ignore (push q (Sim.Time.ms 1.) "first");
        ignore (push q (Sim.Time.ms 1.) "second");
        (match pop q with
        | Some (_, p) -> Alcotest.(check string) "fifo at same time" "first" p
        | None -> Alcotest.fail "empty"));
    Alcotest.test_case "cancel removes event" `Quick (fun () ->
        let q = create () in
        let h = push q (Sim.Time.ms 1.) "dead" in
        ignore (push q (Sim.Time.ms 2.) "live");
        cancel q h;
        Alcotest.(check int) "size" 1 (size q);
        (match pop q with
        | Some (_, p) -> Alcotest.(check string) "skips cancelled" "live" p
        | None -> Alcotest.fail "empty"));
    Alcotest.test_case "cancel after pop is a no-op" `Quick (fun () ->
        let q = create () in
        let h = push q (Sim.Time.ms 1.) "x" in
        ignore (pop q);
        cancel q h;
        Alcotest.(check int) "size stays 0" 0 (size q);
        Alcotest.(check bool) "empty" true (is_empty q));
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let q = create () in
        ignore (push q (Sim.Time.ms 5.) "x");
        Alcotest.(check bool) "peek some" true (peek_time q <> None);
        Alcotest.(check int) "still there" 1 (size q));
    Alcotest.test_case "many events stay sorted" `Quick (fun () ->
        let q = create () in
        let r = Sim.Rng.create 5 in
        for i = 0 to 999 do
          ignore (push q (Sim.Time.ns (Sim.Rng.int r 1_000_000)) i)
        done;
        let rec drain last n =
          match pop q with
          | None -> n
          | Some (t, _) ->
            Alcotest.(check bool) "non-decreasing" true Sim.Time.(t >= last);
            drain t (n + 1)
        in
        Alcotest.(check int) "all drained" 1000 (drain Sim.Time.zero 0));
  ]

let engine_tests =
  let open Sim.Engine in
  [
    Alcotest.test_case "clock starts at zero" `Quick (fun () ->
        let e = create () in
        Alcotest.(check int64) "zero" 0L (Sim.Time.to_ns (now e)));
    Alcotest.test_case "schedule_after fires at the right time" `Quick (fun () ->
        let e = create () in
        let fired_at = ref Sim.Time.zero in
        ignore (schedule_after e (Sim.Time.ms 5.) (fun () -> fired_at := now e));
        ignore (run e);
        Alcotest.(check int64) "at 5ms" (Sim.Time.to_ns (Sim.Time.ms 5.))
          (Sim.Time.to_ns !fired_at));
    Alcotest.test_case "scheduling in the past raises" `Quick (fun () ->
        let e = create () in
        ignore (schedule_after e (Sim.Time.ms 5.) (fun () -> ()));
        ignore (run e);
        Alcotest.check_raises "past" (Invalid_argument "x") (fun () ->
            try ignore (schedule_at e (Sim.Time.ms 1.) (fun () -> ()))
            with Invalid_argument _ -> raise (Invalid_argument "x")));
    Alcotest.test_case "run ~until stops and advances clock" `Quick (fun () ->
        let e = create () in
        let count = ref 0 in
        ignore (schedule_after e (Sim.Time.ms 1.) (fun () -> incr count));
        ignore (schedule_after e (Sim.Time.ms 10.) (fun () -> incr count));
        let final = run ~until:(Sim.Time.ms 5.) e in
        Alcotest.(check int) "only first fired" 1 !count;
        Alcotest.(check int64) "clock at until" (Sim.Time.to_ns (Sim.Time.ms 5.))
          (Sim.Time.to_ns final);
        ignore (run e);
        Alcotest.(check int) "second fires later" 2 !count);
    Alcotest.test_case "cancel prevents execution" `Quick (fun () ->
        let e = create () in
        let fired = ref false in
        let h = schedule_after e (Sim.Time.ms 1.) (fun () -> fired := true) in
        cancel e h;
        ignore (run e);
        Alcotest.(check bool) "not fired" false !fired);
    Alcotest.test_case "periodic stops when f returns false" `Quick (fun () ->
        let e = create () in
        let n = ref 0 in
        periodic e ~every:(Sim.Time.ms 1.) (fun () ->
            incr n;
            !n < 5);
        ignore (run e);
        Alcotest.(check int) "five ticks" 5 !n);
    Alcotest.test_case "events scheduled by events run in order" `Quick (fun () ->
        let e = create () in
        let log = ref [] in
        ignore
          (schedule_after e (Sim.Time.ms 1.) (fun () ->
               log := "a" :: !log;
               ignore (schedule_after e (Sim.Time.ms 1.) (fun () -> log := "c" :: !log))));
        ignore (schedule_after e (Sim.Time.us 1500.) (fun () -> log := "b" :: !log));
        ignore (run e);
        Alcotest.(check (list string)) "order a b c" [ "a"; "b"; "c" ] (List.rev !log));
    Alcotest.test_case "run_for advances exactly" `Quick (fun () ->
        let e = create () in
        ignore (run_for e (Sim.Time.s 2.));
        Alcotest.(check int64) "2 s" (Sim.Time.to_ns (Sim.Time.s 2.)) (Sim.Time.to_ns (now e)));
    Alcotest.test_case "advance_to refuses to skip events" `Quick (fun () ->
        let e = create () in
        ignore (schedule_after e (Sim.Time.ms 1.) (fun () -> ()));
        Alcotest.(check bool) "raises" true
          (try
             advance_to e (Sim.Time.ms 2.);
             false
           with Simulation_deadlock _ -> true));
    Alcotest.test_case "fork_rng gives reproducible streams" `Quick (fun () ->
        let e1 = create ~seed:9 () and e2 = create ~seed:9 () in
        let r1 = fork_rng e1 and r2 = fork_rng e2 in
        Alcotest.(check int64) "same" (Sim.Rng.int64 r1) (Sim.Rng.int64 r2));
    Alcotest.test_case "events_processed counts" `Quick (fun () ->
        let e = create () in
        for _ = 1 to 7 do
          ignore (schedule_after e (Sim.Time.ms 1.) (fun () -> ()))
        done;
        ignore (run e);
        Alcotest.(check int) "seven" 7 (events_processed e));
  ]

let trace_tests =
  let open Sim.Trace in
  [
    Alcotest.test_case "emit and read back" `Quick (fun () ->
        let t = create () in
        emit t (Sim.Time.ms 1.) Info ~component:"vm" "started";
        emit t (Sim.Time.ms 2.) Warn ~component:"ksm" "slow";
        Alcotest.(check int) "count" 2 (count t);
        Alcotest.(check int) "find vm" 1 (List.length (find t ~component:"vm")));
    Alcotest.test_case "contains matches substring" `Quick (fun () ->
        let t = create () in
        emitf t Sim.Time.zero Info ~component:"hv" "launched %s (pid %d)" "guest0" 42;
        Alcotest.(check bool) "match" true (contains t ~component:"hv" ~substring:"guest0");
        Alcotest.(check bool) "no match" false (contains t ~component:"hv" ~substring:"nope"));
    Alcotest.test_case "capacity drops oldest" `Quick (fun () ->
        let t = create ~capacity:3 () in
        for i = 1 to 5 do
          emit t Sim.Time.zero Info ~component:"x" (string_of_int i)
        done;
        Alcotest.(check int) "kept 3" 3 (count t);
        Alcotest.(check int) "dropped 2" 2 (dropped t);
        match records t with
        | { message; _ } :: _ -> Alcotest.(check string) "oldest kept is 3" "3" message
        | [] -> Alcotest.fail "empty");
    Alcotest.test_case "clear empties" `Quick (fun () ->
        let t = create () in
        emit t Sim.Time.zero Debug ~component:"x" "y";
        clear t;
        Alcotest.(check int) "empty" 0 (count t));
    Alcotest.test_case "clear resets the dropped counter" `Quick (fun () ->
        let t = create ~capacity:2 () in
        for i = 1 to 5 do
          emit t Sim.Time.zero Info ~component:"x" (string_of_int i)
        done;
        Alcotest.(check int) "dropped before clear" 3 (dropped t);
        clear t;
        Alcotest.(check int) "dropped after clear" 0 (dropped t);
        Alcotest.(check int) "count after clear" 0 (count t);
        (* the buffer accepts a full capacity's worth again *)
        emit t Sim.Time.zero Info ~component:"x" "a";
        emit t Sim.Time.zero Info ~component:"x" "b";
        Alcotest.(check int) "refilled" 2 (count t);
        Alcotest.(check int) "still none dropped" 0 (dropped t));
    Alcotest.test_case "emitf formats like Printf" `Quick (fun () ->
        let t = create () in
        emitf t (Sim.Time.ms 3.) Warn ~component:"ksm" "pass %d merged %d pages (%.1f%%)" 7
          120 99.5;
        (match records t with
        | [ r ] ->
          Alcotest.(check string) "message" "pass 7 merged 120 pages (99.5%)" r.message;
          Alcotest.(check string) "component" "ksm" r.component;
          Alcotest.(check bool) "level" true (r.level = Warn)
        | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)));
    Alcotest.test_case "find filters and preserves order" `Quick (fun () ->
        let t = create () in
        emit t (Sim.Time.ms 1.) Info ~component:"a" "one";
        emit t (Sim.Time.ms 2.) Info ~component:"b" "two";
        emit t (Sim.Time.ms 3.) Info ~component:"a" "three";
        let found = find t ~component:"a" in
        Alcotest.(check (list string))
          "messages in order" [ "one"; "three" ]
          (List.map (fun (r : record) -> r.message) found));
    Alcotest.test_case "contains short-circuits across capacity drops" `Quick (fun () ->
        let t = create ~capacity:2 () in
        emit t Sim.Time.zero Info ~component:"x" "evicted";
        emit t Sim.Time.zero Info ~component:"x" "kept-one";
        emit t Sim.Time.zero Info ~component:"x" "kept-two";
        Alcotest.(check bool)
          "evicted record not found" false
          (contains t ~component:"x" ~substring:"evicted");
        Alcotest.(check bool)
          "live record found" true
          (contains t ~component:"x" ~substring:"kept-two"));
  ]

let () =
  Alcotest.run "sim"
    [
      ("time", time_tests);
      ("rng", rng_tests @ rng_props);
      ("stats", stats_tests @ stats_props);
      ("event_queue", queue_tests);
      ("engine", engine_tests);
      ("trace", trace_tests);
    ]
