(* Tests for the skulkfuzz library: program grammar roundtrips and
   mutation validity, coverage signature semantics, engine determinism
   (same seed twice, and --jobs 1 vs 4), the guided-beats-random
   coverage contract, and byte-exact replay of the checked-in corpus
   under test/corpus/. *)

let program_strings ps = List.map Fuzz.Program.to_string ps

let check_stats_equal (a : Fuzz.Engine.stats) (b : Fuzz.Engine.stats) =
  Alcotest.(check int) "executed" a.Fuzz.Engine.executed b.Fuzz.Engine.executed;
  Alcotest.(check (list string)) "corpus" (program_strings a.corpus) (program_strings b.corpus);
  Alcotest.(check int) "guided features" a.guided_features b.guided_features;
  Alcotest.(check int) "guided signatures" a.guided_signatures b.guided_signatures;
  Alcotest.(check int) "random features" a.random_features b.random_features;
  Alcotest.(check int) "random signatures" a.random_signatures b.random_signatures;
  Alcotest.(check (list string)) "finds"
    (List.map (fun f -> Fuzz.Program.to_string f.Fuzz.Engine.find_program) a.finds)
    (List.map (fun f -> Fuzz.Program.to_string f.Fuzz.Engine.find_program) b.finds);
  Alcotest.(check (list (pair string int))) "feature table" a.feature_table b.feature_table

let cfg ?(baseline = false) ?(jobs = 1) ~budget ~seed () =
  { Fuzz.Engine.budget; batch = 8; jobs; seed; initial = []; baseline }

let program_tests =
  [
    Alcotest.test_case "generated programs validate and roundtrip" `Quick (fun () ->
        let rng = Sim.Rng.create 5 in
        for _ = 1 to 100 do
          let p = Fuzz.Program.generate rng in
          (match Fuzz.Program.validate p with
          | Ok () -> ()
          | Error e -> Alcotest.failf "generated program invalid: %s" e);
          let text = Fuzz.Program.to_string p in
          match Fuzz.Program.of_string text with
          | Error e -> Alcotest.failf "roundtrip parse failed: %s\n%s" e text
          | Ok p' -> Alcotest.(check string) "roundtrip" text (Fuzz.Program.to_string p')
        done);
    Alcotest.test_case "mutants validate and differ from their parent" `Quick (fun () ->
        let rng = Sim.Rng.create 6 in
        let p = ref (Fuzz.Program.generate rng) in
        for _ = 1 to 100 do
          let m = Fuzz.Program.mutate rng !p in
          (match Fuzz.Program.validate m with
          | Ok () -> ()
          | Error e -> Alcotest.failf "mutant invalid: %s" e);
          Alcotest.(check bool) "textually distinct" false (Fuzz.Program.equal m !p);
          p := m
        done);
    Alcotest.test_case "shrink candidates stay valid" `Quick (fun () ->
        let rng = Sim.Rng.create 7 in
        for _ = 1 to 50 do
          let p = Fuzz.Program.generate rng in
          List.iter
            (fun s ->
              match Fuzz.Program.validate s with
              | Ok () -> ()
              | Error e -> Alcotest.failf "shrink invalid: %s" e)
            (Fuzz.Program.shrink p)
        done);
    Alcotest.test_case "of_string rejects malformed input" `Quick (fun () ->
        let bad =
          [
            "";
            "skulkfuzz v2\nseed 1\nscenario clean\ncustomer_mb 64\nksm fast\nfaults none\nend\n";
            "skulkfuzz v1\nseed 1\nscenario clean\ncustomer_mb 9999\nksm fast\nfaults none\nend\n";
            "skulkfuzz v1\nseed 1\nscenario clean\ncustomer_mb 64\nksm warp\nfaults none\nend\n";
            "skulkfuzz v1\nseed 1\nscenario clean\ncustomer_mb 64\nksm fast\nfaults none\n\
             frobnicate 3\nend\n";
            "skulkfuzz v1\nseed 1\nscenario clean\ncustomer_mb 64\nksm fast\nfaults none\n";
          ]
        in
        List.iter
          (fun text ->
            Alcotest.(check bool) "rejected" true
              (Result.is_error (Fuzz.Program.of_string text)))
          bad);
  ]

let coverage_tests =
  [
    Alcotest.test_case "bucket is monotone and bounded" `Quick (fun () ->
        Alcotest.(check int) "zero" 0 (Fuzz.Coverage.bucket 0.);
        Alcotest.(check int) "negative" 0 (Fuzz.Coverage.bucket (-3.));
        let prev = ref 0 in
        for v = 1 to 100_000 do
          let b = Fuzz.Coverage.bucket (float_of_int v) in
          Alcotest.(check bool) "monotone" true (b >= !prev);
          Alcotest.(check bool) "bounded" true (b <= 62);
          prev := b
        done);
    Alcotest.test_case "signature ignores order, path_signature keeps it" `Quick (fun () ->
        let s1 = Fuzz.Coverage.signature [ "a"; "b" ] in
        let s2 = Fuzz.Coverage.signature [ "b"; "a"; "a" ] in
        Alcotest.(check string) "set semantics" (Fuzz.Coverage.hex s1) (Fuzz.Coverage.hex s2);
        let p1 = Fuzz.Coverage.path_signature [ "a"; "b" ] in
        let p2 = Fuzz.Coverage.path_signature [ "b"; "a" ] in
        Alcotest.(check bool) "order-sensitive" false (Int64.equal p1 p2);
        Alcotest.(check int) "hex width" 16 (String.length (Fuzz.Coverage.hex p1)));
  ]

let engine_tests =
  [
    Alcotest.test_case "same seed and budget reproduce the run exactly" `Slow (fun () ->
        let a = Fuzz.Engine.run (cfg ~budget:16 ~seed:7 ()) in
        let b = Fuzz.Engine.run (cfg ~budget:16 ~seed:7 ()) in
        check_stats_equal a b);
    Alcotest.test_case "jobs do not change results" `Slow (fun () ->
        let a = Fuzz.Engine.run (cfg ~budget:16 ~seed:11 ~jobs:1 ()) in
        let b = Fuzz.Engine.run (cfg ~budget:16 ~seed:11 ~jobs:4 ()) in
        check_stats_equal a b);
    Alcotest.test_case "guided discovers more than feedback-free random" `Slow (fun () ->
        let s = Fuzz.Engine.run (cfg ~budget:32 ~seed:42 ~baseline:true ()) in
        Alcotest.(check bool)
          (Printf.sprintf "signatures %d > %d" s.Fuzz.Engine.guided_signatures
             s.Fuzz.Engine.random_signatures)
          true
          (s.Fuzz.Engine.guided_signatures > s.Fuzz.Engine.random_signatures);
        Alcotest.(check bool)
          (Printf.sprintf "features %d > %d" s.Fuzz.Engine.guided_features
             s.Fuzz.Engine.random_features)
          true
          (s.Fuzz.Engine.guided_features > s.Fuzz.Engine.random_features));
  ]

let corpus_tests =
  [
    Alcotest.test_case "corpus entries roundtrip through the file format" `Quick (fun () ->
        let rng = Sim.Rng.create 9 in
        let p = Fuzz.Program.generate rng in
        let entry =
          {
            Fuzz.Corpus.name = "t.skulkfuzz";
            program = p;
            expect_violation = Some "migration-conservation";
            expect_signature = "00deadbeef00cafe";
          }
        in
        let text = Fuzz.Corpus.entry_to_string entry in
        match Fuzz.Corpus.entry_of_string ~name:"t.skulkfuzz" text with
        | Error e -> Alcotest.failf "reparse failed: %s" e
        | Ok e' -> Alcotest.(check string) "roundtrip" text (Fuzz.Corpus.entry_to_string e'));
    Alcotest.test_case "checked-in corpus replays to its recorded outcome" `Slow (fun () ->
        match Fuzz.Corpus.load_dir "corpus" with
        | Error e -> Alcotest.failf "load_dir: %s" e
        | Ok entries ->
          Alcotest.(check bool) "has the hand-seeded programs" true (List.length entries >= 4);
          List.iter
            (fun e ->
              match Fuzz.Corpus.check e with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "replay drift: %s" msg)
            entries);
  ]

let () =
  Alcotest.run "fuzz"
    [
      ("program", program_tests);
      ("coverage", coverage_tests);
      ("engine", engine_tests);
      ("corpus", corpus_tests);
    ]
