(* The streaming observability layer: Sim.Stats.Sketch rank-error and
   determinism contracts, the sketch-backed Stats accumulator, telemetry
   summary series (registration, export, merging, --jobs independence),
   and the detector service's bounded event ring and probe budget. *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

(* Distance from the sketch's estimate [v] for quantile [q] to the
   nearest acceptable rank in [xs]: 0 when [v] splits the sorted samples
   at q*n, otherwise how many ranks off it is. *)
let rank_error xs q v =
  let n = Array.length xs in
  let below = Array.fold_left (fun a x -> if x < v then a + 1 else a) 0 xs in
  let upto = Array.fold_left (fun a x -> if x <= v then a + 1 else a) 0 xs in
  let target = q *. float_of_int n in
  if target < float_of_int below then float_of_int below -. target
  else if target > float_of_int upto then target -. float_of_int upto
  else 0.

let quantile_grid = [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]

(* The documented conservative bound for the default compression. *)
let rank_bound n =
  (2. *. float_of_int n /. float_of_int 128) +. 2.

let check_rank_errors ?(scale = 1.) name xs sk =
  let bound = scale *. rank_bound (Array.length xs) in
  List.iter
    (fun q ->
      let err = rank_error xs q (Sim.Stats.Sketch.quantile sk q) in
      if err > bound then
        Alcotest.failf "%s: q=%.2f rank error %.1f > bound %.1f (n=%d)" name q err bound
          (Array.length xs))
    quantile_grid

let sketch_of_array xs =
  let sk = Sim.Stats.Sketch.create () in
  Array.iter (Sim.Stats.Sketch.add sk) xs;
  sk

let sketch_tests =
  let open Sim.Stats in
  [
    Alcotest.test_case "empty sketch is nan; single value is exact" `Quick (fun () ->
        let sk = Sketch.create () in
        Alcotest.(check bool) "empty -> nan" true (Float.is_nan (Sketch.quantile sk 0.5));
        Sketch.add sk 5.;
        List.iter
          (fun q ->
            Alcotest.(check (float 0.)) "single value" 5. (Sketch.quantile sk q))
          (0. :: 1. :: quantile_grid));
    Alcotest.test_case "quantiles are monotone and anchored at min/max" `Quick (fun () ->
        let xs = Array.init 3000 (fun i -> float_of_int ((i * 7919) mod 1237)) in
        let sk = sketch_of_array xs in
        Alcotest.(check (float 0.)) "q0 = min" (Sketch.min sk) (Sketch.quantile sk 0.);
        Alcotest.(check (float 0.)) "q1 = max" (Sketch.max sk) (Sketch.quantile sk 1.);
        let prev = ref neg_infinity in
        List.iter
          (fun q ->
            let v = Sketch.quantile sk q in
            if v < !prev then Alcotest.failf "quantiles not monotone at q=%.2f" q;
            prev := v)
          (0. :: quantile_grid @ [ 1. ]));
    Alcotest.test_case "adversarial sorted input stays within the bound" `Quick (fun () ->
        let n = 5000 in
        let asc = Array.init n float_of_int in
        check_rank_errors "ascending" asc (sketch_of_array asc);
        let desc = Array.init n (fun i -> float_of_int (n - 1 - i)) in
        check_rank_errors "descending" desc (sketch_of_array desc));
    Alcotest.test_case "identical add sequences give identical estimates" `Quick (fun () ->
        let xs = Array.init 2500 (fun i -> float_of_int ((i * 31) mod 997)) in
        let a = sketch_of_array xs and b = sketch_of_array xs in
        List.iter
          (fun q ->
            Alcotest.(check (float 0.)) "bit-equal" (Sketch.quantile a q)
              (Sketch.quantile b q))
          quantile_grid;
        Alcotest.(check int) "same centroid count" (Sketch.centroids a)
          (Sketch.centroids b));
    Alcotest.test_case "copy is independent of the original" `Quick (fun () ->
        let xs = Array.init 1000 (fun i -> float_of_int (i mod 173)) in
        let a = sketch_of_array xs in
        let b = Sketch.copy a in
        let before = Sketch.quantile b 0.5 in
        Array.iter (Sketch.add a) (Array.make 500 1e9);
        Alcotest.(check (float 0.)) "copy unaffected" before (Sketch.quantile b 0.5);
        Alcotest.(check int) "counts diverge" 1500 (Sketch.count a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random streams stay within the documented rank error"
         ~count:40
         QCheck.(list_of_size Gen.(int_range 200 1500) (int_range (-1_000_000) 1_000_000))
         (fun ints ->
           let xs = Array.of_list (List.map float_of_int ints) in
           check_rank_errors "random" xs (sketch_of_array xs);
           true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merged sketches stay within twice the rank error"
         ~count:30
         QCheck.(
           pair
             (list_of_size Gen.(int_range 100 800) (int_range (-1_000_000) 1_000_000))
             (list_of_size Gen.(int_range 100 800) (int_range (-1_000_000) 1_000_000)))
         (fun (l1, l2) ->
           let a = sketch_of_array (Array.of_list (List.map float_of_int l1)) in
           let b = sketch_of_array (Array.of_list (List.map float_of_int l2)) in
           Sim.Stats.Sketch.merge_into ~into:a b;
           let all = Array.of_list (List.map float_of_int (l1 @ l2)) in
           Alcotest.(check int) "count adds" (Array.length all) (Sim.Stats.Sketch.count a);
           check_rank_errors ~scale:2. "merged" all a;
           true));
  ]

let stats_tests =
  let open Sim.Stats in
  [
    Alcotest.test_case "moments stay exact after spilling into the sketch" `Quick
      (fun () ->
        let st = create ~sample_cap:16 () in
        for i = 0 to 99 do
          add st (float_of_int i)
        done;
        Alcotest.(check bool) "sketched" true (is_sketched st);
        Alcotest.(check (list (float 0.))) "samples gone" [] (samples st);
        Alcotest.(check int) "count" 100 (count st);
        Alcotest.(check (float 1e-9)) "mean exact" 49.5 (mean st);
        Alcotest.(check (float 0.)) "min" 0. (min st);
        Alcotest.(check (float 0.)) "max" 99. (max st);
        Alcotest.(check (float 1e-9)) "sum" 4950. (sum st);
        (* uniform unit spacing: rank error translates to value error *)
        let tol = rank_bound 100 in
        Alcotest.(check (float tol)) "p50 near exact" 49.5 (percentile st 50.));
    Alcotest.test_case "below the cap percentiles match of_list exactly" `Quick
      (fun () ->
        let st = create () in
        List.iter (add st) [ 9.; 1.; 5.; 3.; 7. ];
        let reference = of_list [ 9.; 1.; 5.; 3.; 7. ] in
        Alcotest.(check bool) "not sketched" false (is_sketched st);
        List.iter
          (fun p ->
            Alcotest.(check (float 0.)) "exact" (percentile reference p)
              (percentile st p))
          [ 0.; 25.; 50.; 90.; 100. ]);
    Alcotest.test_case "merge_into under the cap concatenates samples" `Quick (fun () ->
        let a = of_list [ 1.; 2.; 3. ] and b = of_list [ 10.; 20. ] in
        merge_into ~into:a b;
        Alcotest.(check int) "count" 5 (count a);
        Alcotest.(check bool) "still exact" false (is_sketched a);
        Alcotest.(check (list (float 0.))) "into then src order" [ 1.; 2.; 3.; 10.; 20. ]
          (samples a);
        let reference = of_list [ 1.; 2.; 3.; 10.; 20. ] in
        Alcotest.(check (float 0.)) "p50 matches of_list" (percentile reference 50.)
          (percentile a 50.);
        Alcotest.(check (float 1e-9)) "mean" (mean reference) (mean a));
    Alcotest.test_case "merge_into combines moments exactly across the cap" `Quick
      (fun () ->
        let a = create () in
        List.iter (add a) [ 4.; 8.; 15. ];
        let b = create ~sample_cap:4 () in
        for i = 0 to 9 do
          add b (float_of_int (16 + i))
        done;
        Alcotest.(check bool) "src sketched" true (is_sketched b);
        merge_into ~into:a b;
        Alcotest.(check bool) "merge forced the sketch path" true (is_sketched a);
        let reference =
          of_list ([ 4.; 8.; 15. ] @ List.init 10 (fun i -> float_of_int (16 + i)))
        in
        Alcotest.(check int) "count" (count reference) (count a);
        Alcotest.(check (float 1e-9)) "mean exact" (mean reference) (mean a);
        Alcotest.(check (float 1e-9)) "stddev exact" (stddev reference) (stddev a);
        Alcotest.(check (float 0.)) "min" (min reference) (min a);
        Alcotest.(check (float 0.)) "max" (max reference) (max a));
  ]

let telemetry_tests =
  let open Sim.Telemetry in
  [
    Alcotest.test_case "summary registers, records and exports quantiles" `Quick
      (fun () ->
        let t = create () in
        let s = summary (Some t) ~component:"m" "lat_ns" in
        Alcotest.(check (option int)) "empty at registration" (Some 0)
          (summary_count t "m_lat_ns");
        for i = 1 to 100 do
          record s (float_of_int i)
        done;
        Alcotest.(check (option int)) "count" (Some 100) (summary_count t "m_lat_ns");
        (match summary_quantile t "m_lat_ns" 0.5 with
        | Some v -> Alcotest.(check (float (rank_bound 100))) "median" 50.5 v
        | None -> Alcotest.fail "no quantile");
        let prom = prometheus_string t in
        Alcotest.(check bool) "TYPE line" true
          (contains_sub prom "# TYPE m_lat_ns summary");
        Alcotest.(check bool) "quantile series" true
          (contains_sub prom {|m_lat_ns{quantile="0.5"}|});
        Alcotest.(check bool) "count series" true (contains_sub prom "m_lat_ns_count 100"));
    Alcotest.test_case "invalid quantile lists are rejected" `Quick (fun () ->
        let t = create () in
        let rejected qs =
          try
            let _ = summary (Some t) ~quantiles:qs ~component:"m" "bad_ns" in
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "descending" true (rejected [ 0.9; 0.5 ]);
        Alcotest.(check bool) "zero" true (rejected [ 0.; 0.5 ]);
        Alcotest.(check bool) "one" true (rejected [ 0.5; 1. ]));
    Alcotest.test_case "kind mismatch with an existing series raises" `Quick (fun () ->
        let t = create () in
        let _ = counter (Some t) ~component:"c" "x" in
        Alcotest.(check bool) "counter vs summary rejected" true
          (try
             let _ = summary (Some t) ~component:"c" "x" in
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "merge_into adds counts; quantile sets must match" `Quick
      (fun () ->
        let a = create () and b = create () in
        let sa = summary (Some a) ~component:"m" "lat_ns" in
        let sb = summary (Some b) ~component:"m" "lat_ns" in
        record sa 1.;
        record sb 2.;
        record sb 3.;
        merge_into ~into:a b;
        Alcotest.(check (option int)) "3 observations" (Some 3)
          (summary_count a "m_lat_ns");
        let c = create () in
        let _ = summary (Some c) ~quantiles:[ 0.5 ] ~component:"m" "lat_ns" in
        Alcotest.(check bool) "mismatched quantiles rejected" true
          (try
             merge_into ~into:a c;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "jsonl carries summaries; empty ones have no quantiles" `Quick
      (fun () ->
        let t = create () in
        let s = summary (Some t) ~component:"m" "lat_ns" in
        let _ = summary (Some t) ~component:"m" "idle_ns" in
        record s 7.;
        let out = jsonl_string t in
        Alcotest.(check bool) "recorded summary present" true
          (contains_sub out {|"summary":"m_lat_ns"|});
        Alcotest.(check bool) "empty summary has empty quantiles" true
          (contains_sub out {|"summary":"m_idle_ns","count":0,"sum":0,"quantiles":{}|}));
    Alcotest.test_case "summary exports are independent of --jobs" `Quick (fun () ->
        let run jobs =
          let sink = create () in
          let ctx = Sim.Ctx.create ~seed:7 ~telemetry:sink () in
          ignore
            (Sim.Parallel.map_ctx ~jobs ~ctx ~trials:8 (fun i cctx ->
                 let s =
                   summary (Sim.Ctx.telemetry cctx) ~component:"trial" "work_ns"
                 in
                 for k = 0 to 20 + i do
                   record s (float_of_int ((i * 100) + k))
                 done));
          prometheus_string sink
        in
        Alcotest.(check string) "jobs 1 = jobs 4" (run 1) (run 4));
  ]

(* --- detector service: bounded ring, budget, monitor determinism ------- *)

let target_config ?(name = "guest0") () =
  let c = { (Vmm.Qemu_config.default ~name) with Vmm.Qemu_config.memory_mb = 64 } in
  Vmm.Qemu_config.with_hostfwd c [ (2222, 22) ]

let mk_world ?(seed = 42) () =
  let ctx = Sim.Ctx.create ~seed () in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"host" ~uplink ~addr:"192.168.1.100" in
  (ctx, host)

let working_env ctx host vm () =
  {
    Cloudskulk.Dedup_detector.ctx;
    host;
    deliver_to_guest =
      (fun image -> Result.map (fun _ -> ()) (Vmm.Vm.load_file vm image));
    mutate_in_guest =
      (fun ~name ~salt ->
        match Vmm.Vm.file_offset vm name with
        | None -> Error "no such file"
        | Some off ->
          let pages =
            match List.find_opt (fun (n, _, _) -> n = name) (Vmm.Vm.loaded_files vm) with
            | Some (_, _, p) -> p
            | None -> 0
          in
          let ram = Vmm.Vm.ram vm in
          for i = 0 to pages - 1 do
            let c = Memory.Address_space.read ram (off + i) in
            ignore (Memory.Address_space.write ram (off + i) (Memory.Page.Content.mutate c ~salt))
          done;
          Ok ());
  }

let service_tests =
  let open Cloudskulk.Detector_service in
  [
    Alcotest.test_case "event ring keeps the newest events and counts drops" `Quick
      (fun () ->
        let ctx, host = mk_world () in
        let policy = { default_policy with event_log_capacity = 3 } in
        let service = create ~policy ctx host in
        register_tenant service ~name:"ghost" ~env:(fun () ->
            {
              Cloudskulk.Dedup_detector.ctx;
              host;
              deliver_to_guest = (fun _ -> Error "agent unreachable");
              mutate_in_guest = (fun ~name:_ ~salt:_ -> Ok ());
            });
        (* a failing probe never sets a verdict, so the tenant stays due
           and every sweep raises one Probe_failed *)
        for _ = 1 to 5 do
          ignore (sweep_now service)
        done;
        Alcotest.(check int) "ring holds capacity" 3 (List.length (events service));
        Alcotest.(check int) "overflow counted" 2 (events_dropped service);
        Alcotest.(check bool) "all retained are probe failures" true
          (List.for_all (function Probe_failed _ -> true | _ -> false) (events service));
        (* the retained tail is sweeps 3..5, oldest first *)
        match events service with
        | Probe_failed { sweep = 3; _ } :: _ -> ()
        | ev :: _ -> Alcotest.failf "unexpected head: %s" (event_to_string ev)
        | [] -> Alcotest.fail "ring empty");
    Alcotest.test_case "probe budget defers the second tenant to the next sweep" `Quick
      (fun () ->
        let ctx, host = mk_world () in
        let vm = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
        let policy = { default_policy with probe_budget = 1 } in
        let service = create ~policy ctx host in
        register_tenant service ~name:"a" ~env:(working_env ctx host vm);
        register_tenant service ~name:"b" ~env:(working_env ctx host vm);
        let evs = sweep_now service in
        Alcotest.(check bool) "b deferred" true
          (List.exists
             (function Budget_exhausted { tenant = "b"; _ } -> true | _ -> false)
             evs);
        Alcotest.(check int) "one deferral" 1 (budget_deferrals service);
        (match tenant_state service "b" with
        | Some st -> Alcotest.(check int) "b not probed yet" 0 st.probes
        | None -> Alcotest.fail "tenant b missing");
        ignore (sweep_now service);
        match tenant_state service "b" with
        | Some st ->
          Alcotest.(check int) "b probed on the next window" 1 st.probes;
          Alcotest.(check bool) "b has a verdict" true (Option.is_some st.last_verdict)
        | None -> Alcotest.fail "tenant b missing");
    Alcotest.test_case "continuous monitor is deterministic per seed" `Quick (fun () ->
        let observe () =
          let ctx = Sim.Ctx.create ~seed:11 () in
          let sc =
            Cloudskulk.Scenarios.infected ~customer_memory_mb:256
              ~install_config:
                { (Cloudskulk.Install.default_config ~target_name:"guest0") with
                  Cloudskulk.Install.use_vtx = false }
              ctx
          in
          let sctx = sc.Cloudskulk.Scenarios.ctx in
          let policy =
            { default_policy with
              sweep_every = Sim.Time.minutes 10.;
              dedup_every_n_sweeps = 2;
              probe_budget = 1 }
          in
          let service = create ~policy sctx sc.Cloudskulk.Scenarios.host in
          register_tenant service ~name:"tenant-a" ~env:(fun () ->
              sc.Cloudskulk.Scenarios.detector_env);
          start_monitor service;
          ignore (Sim.Engine.run_for (Sim.Ctx.engine sctx) (Sim.Time.minutes 50.));
          stop service;
          ( List.map event_to_string (events service),
            time_to_detect service "tenant-a",
            sweeps_run service )
        in
        let ev1, ttd1, sweeps1 = observe () in
        let ev2, ttd2, sweeps2 = observe () in
        Alcotest.(check (list string)) "same events" ev1 ev2;
        Alcotest.(check int) "same sweeps" sweeps1 sweeps2;
        Alcotest.(check bool) "detected" true (Option.is_some ttd1);
        Alcotest.(check bool) "same time-to-detect" true (ttd1 = ttd2));
  ]

let () =
  Alcotest.run "observability"
    [
      ("sketch", sketch_tests);
      ("stats", stats_tests);
      ("telemetry_summary", telemetry_tests);
      ("detector_streaming", service_tests);
    ]
