(* Tests for workload generators: background dirtying behaviour, the
   kernel-compile timing shape (Fig 2), netperf (Fig 3), filebench, and
   the lmbench calibration (Tables II-IV). *)

let mk_env ?(level = Vmm.Level.l0) ?(pages = 4096) ?(noise_rsd = 0.) () =
  let ctx = Sim.Ctx.create () in
  let ft = Memory.Frame_table.create ctx in
  let ram = Memory.Address_space.create_root ft ~name:"ws" ~pages in
  Workload.Exec_env.make ~noise_rsd ~ctx ~level ~ram ~rng:(Sim.Rng.create 7) ()

let background_tests =
  [
    Alcotest.test_case "idle dirties a trickle" `Quick (fun () ->
        let env = mk_env () in
        let h = Workload.Background.start env (Workload.Idle.background ()) in
        ignore (Sim.Engine.run_for env.Workload.Exec_env.engine (Sim.Time.s 10.));
        Workload.Background.stop h;
        let dirtied = Memory.Dirty.dirty_count (Memory.Address_space.dirty env.Workload.Exec_env.ram) in
        (* 2 pages/s for 10 s = ~20 *)
        Alcotest.(check bool) "about 20" true (dirtied > 5 && dirtied < 40));
    Alcotest.test_case "compile dirties at its configured rate" `Quick (fun () ->
        let env = mk_env ~pages:262144 () in
        let h =
          Workload.Background.start env
            (Workload.Kernel_compile.background ~pages_per_second:10_000. ())
        in
        ignore (Sim.Engine.run_for env.Workload.Exec_env.engine (Sim.Time.s 5.));
        Workload.Background.stop h;
        let dirtied = Memory.Dirty.dirty_count (Memory.Address_space.dirty env.Workload.Exec_env.ram) in
        (* sequential cursor -> 50k unique pages in 5 s *)
        Alcotest.(check bool) "about 50k" true (dirtied > 45_000 && dirtied < 55_000));
    Alcotest.test_case "filebench stays within its working set" `Quick (fun () ->
        let env = mk_env ~pages:262144 () in
        let h = Workload.Background.start env (Workload.Filebench.background ()) in
        ignore (Sim.Engine.run_for env.Workload.Exec_env.engine (Sim.Time.s 30.));
        Workload.Background.stop h;
        let dirtied = Memory.Dirty.dirty_count (Memory.Address_space.dirty env.Workload.Exec_env.ram) in
        let ws_pages = 96 * 1024 * 1024 / Memory.Page.size_bytes in
        Alcotest.(check bool) "bounded by working set" true (dirtied <= ws_pages));
    Alcotest.test_case "stop actually stops" `Quick (fun () ->
        let env = mk_env () in
        let h = Workload.Background.start env (Workload.Idle.background ()) in
        ignore (Sim.Engine.run_for env.Workload.Exec_env.engine (Sim.Time.s 1.));
        Workload.Background.stop h;
        let ticks = Workload.Background.ticks h in
        ignore (Sim.Engine.run_for env.Workload.Exec_env.engine (Sim.Time.s 5.));
        Alcotest.(check int) "no more ticks" ticks (Workload.Background.ticks h));
  ]

let compile_tests =
  [
    Alcotest.test_case "Fig 2 shape: L0(ccache) << L1 < L2" `Quick (fun () ->
        let run level =
          let env = mk_env ~level () in
          Sim.Time.to_s (Workload.Kernel_compile.run env)
        in
        let l0 = run Vmm.Level.l0 in
        let l1 = run Vmm.Level.l1 in
        let l2 = run Vmm.Level.l2 in
        let pct a b = (b -. a) /. a *. 100. in
        (* paper: +280% L0->L1 (ccache on L0 only), +25.7% L1->L2 *)
        Alcotest.(check bool)
          (Printf.sprintf "L0->L1 +%.0f%% in [250,330]" (pct l0 l1))
          true
          (pct l0 l1 > 250. && pct l0 l1 < 330.);
        Alcotest.(check bool)
          (Printf.sprintf "L1->L2 +%.1f%% in [20,32]" (pct l1 l2))
          true
          (pct l1 l2 > 20. && pct l1 l2 < 32.));
    Alcotest.test_case "without the ccache asymmetry L1 is within a few % of L0" `Quick
      (fun () ->
        let run level =
          let env = mk_env ~level () in
          Sim.Time.to_s (Workload.Kernel_compile.run ~ccache_at_l0:false env)
        in
        let l0 = run Vmm.Level.l0 and l1 = run Vmm.Level.l1 in
        let pct = (l1 -. l0) /. l0 *. 100. in
        Alcotest.(check bool) (Printf.sprintf "+%.1f%% < 5%%" pct) true (pct < 5.));
    Alcotest.test_case "compile advances the virtual clock" `Quick (fun () ->
        let env = mk_env () in
        let before = Sim.Engine.now env.Workload.Exec_env.engine in
        let d = Workload.Kernel_compile.run env in
        let after = Sim.Engine.now env.Workload.Exec_env.engine in
        Alcotest.(check bool) "clock moved by duration" true
          (Sim.Time.equal (Sim.Time.diff after before) d));
    Alcotest.test_case "compile duration scale matches the testbed (minutes)" `Quick (fun () ->
        let env = mk_env ~level:Vmm.Level.l1 () in
        let d = Sim.Time.to_s (Workload.Kernel_compile.run env) in
        (* L1 kernel compile on the paper's i7 testbed: tens of minutes *)
        Alcotest.(check bool) (Printf.sprintf "%.0f s in [600, 1200]" d) true
          (d > 600. && d < 1200.));
  ]

let netperf_tests =
  [
    Alcotest.test_case "Fig 3 shape: throughput within noise across levels" `Quick (fun () ->
        let mean_of level =
          let env = mk_env ~level ~noise_rsd:0.02 () in
          let stats = Sim.Stats.create () in
          for _ = 1 to 5 do
            let r = Workload.Netperf.run env in
            Sim.Stats.add stats r.Workload.Netperf.throughput_mbit_s
          done;
          Sim.Stats.mean stats
        in
        let l0 = mean_of Vmm.Level.l0 in
        let l1 = mean_of Vmm.Level.l1 in
        let l2 = mean_of Vmm.Level.l2 in
        let spread = (Float.max l0 (Float.max l1 l2) -. Float.min l0 (Float.min l1 l2)) /. l0 in
        Alcotest.(check bool)
          (Printf.sprintf "spread %.1f%% < 15%%" (spread *. 100.))
          true (spread < 0.15));
    Alcotest.test_case "throughput near 1GbE line rate" `Quick (fun () ->
        let env = mk_env () in
        let r = Workload.Netperf.run env in
        Alcotest.(check bool)
          (Printf.sprintf "%.0f Mbit/s in [800, 1000]" r.Workload.Netperf.throughput_mbit_s)
          true
          (r.Workload.Netperf.throughput_mbit_s > 800.
          && r.Workload.Netperf.throughput_mbit_s < 1000.));
    Alcotest.test_case "L1 has the largest run-to-run variance (paper RSDs)" `Quick (fun () ->
        let rsd_of level =
          let env = mk_env ~level () in
          let stats = Sim.Stats.create () in
          for _ = 1 to 30 do
            let r = Workload.Netperf.run env in
            Sim.Stats.add stats r.Workload.Netperf.throughput_mbit_s
          done;
          Sim.Stats.rsd stats
        in
        let r0 = rsd_of Vmm.Level.l0 in
        let r1 = rsd_of Vmm.Level.l1 in
        let r2 = rsd_of Vmm.Level.l2 in
        Alcotest.(check bool) "L1 noisiest" true (r1 > r0 && r1 > r2));
  ]

let filebench_tests =
  [
    Alcotest.test_case "ops complete and rate is positive" `Quick (fun () ->
        let env = mk_env ~pages:262144 () in
        let r = Workload.Filebench.run ~ops:10_000 env in
        Alcotest.(check int) "ops" 10_000 r.Workload.Filebench.ops_done;
        Alcotest.(check bool) "rate > 0" true (r.Workload.Filebench.ops_per_second > 0.));
    Alcotest.test_case "slower at L2 than at L0" `Quick (fun () ->
        let rate level =
          let env = mk_env ~pages:262144 ~level () in
          (Workload.Filebench.run ~ops:10_000 env).Workload.Filebench.ops_per_second
        in
        Alcotest.(check bool) "L2 slower" true (rate Vmm.Level.l2 < rate Vmm.Level.l0));
  ]

let lmbench_tests =
  [
    Alcotest.test_case "Table II: arithmetic rows virtually level-independent" `Quick (fun () ->
        List.iter
          (fun (name, op) ->
            let c0 = Vmm.Cost_model.cost_ns ~level:Vmm.Level.l0 op in
            let c1 = Vmm.Cost_model.cost_ns ~level:Vmm.Level.l1 op in
            let c2 = Vmm.Cost_model.cost_ns ~level:Vmm.Level.l2 op in
            Alcotest.(check bool) (name ^ " L1 == L0") true (Float.abs (c1 -. c0) < 0.001);
            Alcotest.(check bool)
              (name ^ " L2 within 4%")
              true
              ((c2 -. c0) /. c0 < 0.04))
          Workload.Lmbench.arithmetic);
    Alcotest.test_case "Table II L0 column values" `Quick (fun () ->
        let expect =
          [
            ("integer bit", 0.26); ("integer add", 0.13); ("integer div", 5.94);
            ("integer mod", 6.37); ("float add", 0.75); ("float mul", 1.25);
            ("float div", 3.31); ("double add", 0.75); ("double mul", 1.25);
            ("double div", 5.06);
          ]
        in
        List.iter
          (fun (name, ns) ->
            match List.assoc_opt name Workload.Lmbench.arithmetic with
            | None -> Alcotest.failf "missing %s" name
            | Some op ->
              Alcotest.(check (float 0.005))
                name ns
                (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l0 op))
          expect);
    Alcotest.test_case "Table IV: create-0k collapses at L2" `Quick (fun () ->
        let row = List.find (fun r -> r.Workload.Lmbench.size_kb = 0) Workload.Lmbench.fs in
        let rate level =
          Workload.Lmbench.ops_per_second
            ~ns_per_op:(Vmm.Cost_model.cost_ns ~level row.Workload.Lmbench.create)
        in
        let r0 = rate Vmm.Level.l0 and r2 = rate Vmm.Level.l2 in
        Alcotest.(check bool) "L0 about 126k/s" true (Float.abs (r0 -. 126_418.) < 2000.);
        Alcotest.(check bool) "L2 about 2.4k/s" true (Float.abs (r2 -. 2_430.) < 200.));
    Alcotest.test_case "Table IV: deletions stay near baseline at L2" `Quick (fun () ->
        List.iter
          (fun row ->
            let rate level =
              Workload.Lmbench.ops_per_second
                ~ns_per_op:(Vmm.Cost_model.cost_ns ~level row.Workload.Lmbench.delete)
            in
            let r0 = rate Vmm.Level.l0 and r2 = rate Vmm.Level.l2 in
            Alcotest.(check bool)
              (Printf.sprintf "delete-%dk within 25%%" row.Workload.Lmbench.size_kb)
              true
              (r2 > r0 *. 0.75))
          Workload.Lmbench.fs);
    Alcotest.test_case "measure applies noise and advances the clock" `Quick (fun () ->
        let env = mk_env ~noise_rsd:0.05 () in
        let op = List.assoc "pipe latency" Workload.Lmbench.processes in
        let before = Sim.Engine.now env.Workload.Exec_env.engine in
        let v = Workload.Lmbench.measure env op in
        Alcotest.(check bool) "positive" true (v > 0.);
        Alcotest.(check bool) "clock advanced" true
          Sim.Time.(Sim.Engine.now env.Workload.Exec_env.engine > before));
  ]

let exec_env_tests =
  [
    Alcotest.test_case "consume advances time by the op cost" `Quick (fun () ->
        let env = mk_env () in
        let op = Vmm.Cost_model.pure_cpu ~name:"x" ~cpu:(Sim.Time.ms 1.) in
        let d = Workload.Exec_env.consume env op 10 in
        Alcotest.(check bool) "about 10ms" true
          (Float.abs (Sim.Time.to_ms d -. 10.) < 0.01));
    Alcotest.test_case "dirty_sequential wraps" `Quick (fun () ->
        let env = mk_env ~pages:16 () in
        let cursor = ref 10 in
        Workload.Exec_env.dirty_sequential env ~cursor 10;
        Alcotest.(check int) "cursor advanced" 20 !cursor;
        (* pages 10..15 and 0..3 dirtied *)
        Alcotest.(check bool) "wrapped" true
          (Memory.Dirty.is_dirty (Memory.Address_space.dirty env.Workload.Exec_env.ram) 0));
    Alcotest.test_case "dirty_region stays in bounds" `Quick (fun () ->
        let env = mk_env ~pages:100 () in
        Workload.Exec_env.dirty_region env ~offset:50 ~length:10 200;
        let d = Memory.Address_space.dirty env.Workload.Exec_env.ram in
        for i = 0 to 49 do
          Alcotest.(check bool) "below region clean" false (Memory.Dirty.is_dirty d i)
        done;
        for i = 60 to 99 do
          Alcotest.(check bool) "above region clean" false (Memory.Dirty.is_dirty d i)
        done);
  ]

let () =
  Alcotest.run "workload"
    [
      ("background", background_tests);
      ("kernel_compile", compile_tests);
      ("netperf", netperf_tests);
      ("filebench", filebench_tests);
      ("lmbench", lmbench_tests);
      ("exec_env", exec_env_tests);
    ]
