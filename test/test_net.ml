(* Tests for the network substrate: links, packet routing, taps,
   port forwarding, and flows. *)

let engine () = Sim.Ctx.create ()

let link_tests =
  let open Net.Link in
  [
    Alcotest.test_case "transfer time = latency + serialisation" `Quick (fun () ->
        let l = make ~latency:(Sim.Time.ms 1.) ~bandwidth_mbytes_per_s:1. in
        (* 1 MiB at 1 MiB/s = 1 s, plus 1 ms latency *)
        let t = transfer_time l (1024 * 1024) in
        Alcotest.(check int64) "1.001 s" (Sim.Time.to_ns (Sim.Time.ms 1001.)) (Sim.Time.to_ns t));
    Alcotest.test_case "zero bytes costs latency only" `Quick (fun () ->
        let l = make ~latency:(Sim.Time.us 100.) ~bandwidth_mbytes_per_s:10. in
        Alcotest.(check int64) "latency" (Sim.Time.to_ns (Sim.Time.us 100.))
          (Sim.Time.to_ns (transfer_time l 0)));
    Alcotest.test_case "scale_bandwidth derates" `Quick (fun () ->
        let l = make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:100. in
        let slow = scale_bandwidth l 0.5 in
        let fast_t = Sim.Time.to_s (transfer_time l (100 * 1024 * 1024)) in
        let slow_t = Sim.Time.to_s (transfer_time slow (100 * 1024 * 1024)) in
        Alcotest.(check (float 1e-6)) "double time" (2. *. fast_t) slow_t);
    Alcotest.test_case "invalid bandwidth rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:0.);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "negative byte count rejected" `Quick (fun () ->
        let l = make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:1. in
        Alcotest.(check bool) "raises" true
          (try
             ignore (transfer_time l (-1));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "derating saturates at the bandwidth floor" `Quick (fun () ->
        (* repeated aggressive derates must clamp, not underflow to a
           bandwidth whose serialisation times overflow the clock *)
        let l = ref (make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:100.) in
        for _ = 1 to 64 do
          l := scale_bandwidth !l 1e-6
        done;
        Alcotest.(check (float 1e-9)) "clamped to the floor" min_bandwidth_bytes_per_s
          !l.bandwidth_bytes_per_s;
        (* at the 1 B/s floor, one byte serialises in exactly one second *)
        Alcotest.(check (float 1e-6)) "still finite" 1. (Sim.Time.to_s (transfer_time !l 1)));
    Alcotest.test_case "invalid derate factors rejected" `Quick (fun () ->
        let l = make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:1. in
        let rejects f =
          try
            ignore (scale_bandwidth l f);
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "zero" true (rejects 0.);
        Alcotest.(check bool) "negative" true (rejects (-2.));
        Alcotest.(check bool) "nan" true (rejects Float.nan));
  ]

let packet_tests =
  let open Net.Packet in
  [
    Alcotest.test_case "default size includes headers" `Quick (fun () ->
        let p =
          make ~id:1 ~src:(endpoint "a" 1) ~dst:(endpoint "b" 2) "hello"
        in
        Alcotest.(check int) "5 + 54" 59 p.size_bytes);
    Alcotest.test_case "visible payload hides ciphertext" `Quick (fun () ->
        let p =
          make ~encrypted:true ~id:1 ~src:(endpoint "a" 1) ~dst:(endpoint "b" 2) "secret"
        in
        Alcotest.(check string) "hidden" "<ciphertext>" (visible_payload p);
        let q = make ~id:2 ~src:(endpoint "a" 1) ~dst:(endpoint "b" 2) "open" in
        Alcotest.(check string) "clear" "open" (visible_payload q));
  ]

let mk_world () =
  let e = engine () in
  let sw = Net.Fabric.Switch.create e ~name:"sw" ~link:Net.Link.loopback in
  (e, sw)

let send_and_run e sw packet =
  Net.Fabric.Switch.send sw packet;
  ignore (Sim.Engine.run (Sim.Ctx.engine e))

let fabric_tests =
  let open Net.Fabric in
  [
    Alcotest.test_case "delivery to listening port" `Quick (fun () ->
        let e, sw = mk_world () in
        let n = Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
        Node.attach n sw;
        let got = ref None in
        Node.listen n 80 (fun p -> got := Some p.Net.Packet.payload);
        send_and_run e sw
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "x" 1)
             ~dst:(Net.Packet.endpoint "10.0.0.1" 80)
             "GET /");
        Alcotest.(check (option string)) "received" (Some "GET /") !got);
    Alcotest.test_case "unknown address counts as dropped" `Quick (fun () ->
        let e, sw = mk_world () in
        send_and_run e sw
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "x" 1)
             ~dst:(Net.Packet.endpoint "10.9.9.9" 80)
             "?");
        Alcotest.(check int) "dropped" 1 (Switch.packets_dropped sw));
    Alcotest.test_case "unhandled port counted" `Quick (fun () ->
        let e, sw = mk_world () in
        let n = Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
        Node.attach n sw;
        send_and_run e sw
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "x" 1)
             ~dst:(Net.Packet.endpoint "10.0.0.1" 81)
             "?");
        Alcotest.(check int) "unhandled" 1 (Node.packets_unhandled n));
    Alcotest.test_case "port forward rewrites and relays" `Quick (fun () ->
        let e, sw = mk_world () in
        let gw = Node.create (Sim.Ctx.engine e) ~name:"gw" ~addr:"192.168.1.100" in
        let vm = Node.create (Sim.Ctx.engine e) ~name:"vm" ~addr:"10.0.0.5" in
        Node.attach gw sw;
        Node.attach vm sw;
        Node.add_forward gw ~from_port:2222 ~to_:(Net.Packet.endpoint "10.0.0.5" 22) ~via:sw;
        let got = ref None in
        Node.listen vm 22 (fun p -> got := Some p.Net.Packet.payload);
        send_and_run e sw
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "user" 40000)
             ~dst:(Net.Packet.endpoint "192.168.1.100" 2222)
             "ssh");
        Alcotest.(check (option string)) "reached vm:22" (Some "ssh") !got);
    Alcotest.test_case "chained forwards (host -> guestx -> nested)" `Quick (fun () ->
        (* The CloudSkulk path: the victim user's packets reach the
           nested VM through two NAT hops without a client-side change. *)
        let e = engine () in
        let host_sw = Net.Fabric.Switch.create e ~name:"host" ~link:Net.Link.loopback in
        let nested_sw = Net.Fabric.Switch.create e ~name:"nested" ~link:Net.Link.loopback in
        let gw = Node.create (Sim.Ctx.engine e) ~name:"gw" ~addr:"192.168.1.100" in
        let guestx = Node.create (Sim.Ctx.engine e) ~name:"guestx" ~addr:"10.0.0.7" in
        let victim = Node.create (Sim.Ctx.engine e) ~name:"victim" ~addr:"10.1.0.1" in
        Node.attach gw host_sw;
        Node.attach guestx host_sw;
        Node.attach guestx nested_sw;
        Node.attach victim nested_sw;
        Node.add_forward gw ~from_port:2222 ~to_:(Net.Packet.endpoint "10.0.0.7" 2222)
          ~via:host_sw;
        Node.add_forward guestx ~from_port:2222 ~to_:(Net.Packet.endpoint "10.1.0.1" 22)
          ~via:nested_sw;
        let got = ref None in
        Node.listen victim 22 (fun p -> got := Some p.Net.Packet.payload);
        send_and_run e host_sw
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "user" 40000)
             ~dst:(Net.Packet.endpoint "192.168.1.100" 2222)
             "ssh login");
        Alcotest.(check (option string)) "two hops" (Some "ssh login") !got);
    Alcotest.test_case "tap observes, drop kills, rewrite alters" `Quick (fun () ->
        let e, sw = mk_world () in
        let n = Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
        Node.attach n sw;
        let seen = ref [] in
        let got = ref [] in
        Node.add_tap n ~name:"spy" (fun p ->
            seen := p.Net.Packet.payload :: !seen;
            Forward);
        Node.add_tap n ~name:"filter" (fun p ->
            if p.Net.Packet.payload = "bad" then Drop
            else if p.Net.Packet.payload = "fix" then
              Rewrite { p with Net.Packet.payload = "fixed" }
            else Forward);
        Node.listen n 80 (fun p -> got := p.Net.Packet.payload :: !got);
        let send payload =
          send_and_run e sw
            (Net.Packet.make ~id:1
               ~src:(Net.Packet.endpoint "x" 1)
               ~dst:(Net.Packet.endpoint "10.0.0.1" 80)
               payload)
        in
        send "ok";
        send "bad";
        send "fix";
        Alcotest.(check (list string)) "tap saw all" [ "ok"; "bad"; "fix" ] (List.rev !seen);
        Alcotest.(check (list string)) "handler saw filtered" [ "ok"; "fixed" ] (List.rev !got));
    Alcotest.test_case "remove_tap restores flow" `Quick (fun () ->
        let e, sw = mk_world () in
        let n = Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
        Node.attach n sw;
        Node.add_tap n ~name:"dropper" (fun _ -> Drop);
        let got = ref 0 in
        Node.listen n 80 (fun _ -> incr got);
        let send () =
          send_and_run e sw
            (Net.Packet.make ~id:1
               ~src:(Net.Packet.endpoint "x" 1)
               ~dst:(Net.Packet.endpoint "10.0.0.1" 80)
               "p")
        in
        send ();
        Alcotest.(check int) "dropped" 0 !got;
        Node.remove_tap n ~name:"dropper";
        send ();
        Alcotest.(check int) "flows again" 1 !got);
    Alcotest.test_case "detach stops delivery" `Quick (fun () ->
        let e, sw = mk_world () in
        let n = Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
        Node.attach n sw;
        Node.detach n sw;
        send_and_run e sw
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "x" 1)
             ~dst:(Net.Packet.endpoint "10.0.0.1" 80)
             "p");
        Alcotest.(check int) "dropped" 1 (Switch.packets_dropped sw));
    Alcotest.test_case "route_through applies taps without delivering" `Quick (fun () ->
        let e, _ = mk_world () in
        let n = Node.create (Sim.Ctx.engine e) ~name:"mb" ~addr:"10.0.0.9" in
        Node.add_tap n ~name:"rw" (fun p -> Rewrite { p with Net.Packet.payload = "X" });
        let p =
          Net.Packet.make ~id:1 ~src:(Net.Packet.endpoint "a" 1)
            ~dst:(Net.Packet.endpoint "b" 2) "orig"
        in
        (match Node.route_through n p with
        | Some q -> Alcotest.(check string) "rewritten" "X" q.Net.Packet.payload
        | None -> Alcotest.fail "dropped");
        Node.add_tap n ~name:"drop" (fun _ -> Drop);
        Alcotest.(check bool) "dropped now" true (Node.route_through n p = None));
    Alcotest.test_case "delivery takes link time" `Quick (fun () ->
        let e = engine () in
        let link = Net.Link.make ~latency:(Sim.Time.ms 10.) ~bandwidth_mbytes_per_s:1000. in
        let sw = Net.Fabric.Switch.create e ~name:"slow" ~link in
        let n = Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
        Node.attach n sw;
        let at = ref Sim.Time.zero in
        Node.listen n 80 (fun _ -> at := Sim.Engine.now (Sim.Ctx.engine e));
        Net.Fabric.Switch.send sw
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "x" 1)
             ~dst:(Net.Packet.endpoint "10.0.0.1" 80)
             "p");
        ignore (Sim.Engine.run (Sim.Ctx.engine e));
        Alcotest.(check bool) "after latency" true Sim.Time.(!at >= Sim.Time.ms 10.));
  ]

let flow_tests =
  [
    Alcotest.test_case "throughput matches bandwidth" `Quick (fun () ->
        let e = engine () in
        let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:100. in
        let r = Net.Flow.run e ~link ~bytes:(100 * 1024 * 1024) () in
        (* 100 MiB at 100 MiB/s -> 1 s -> 838.8 Mbit/s *)
        Alcotest.(check bool) "about 839 Mbit/s" true
          (Float.abs (r.Net.Flow.throughput_mbit_s -. 838.9) < 5.));
    Alcotest.test_case "derate slows the flow" `Quick (fun () ->
        let e = engine () in
        let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:100. in
        let fast = Net.Flow.run e ~link ~bytes:(10 * 1024 * 1024) () in
        let slow = Net.Flow.run e ~link ~derate:0.5 ~bytes:(10 * 1024 * 1024) () in
        Alcotest.(check bool) "half throughput" true
          (slow.Net.Flow.throughput_mbit_s < fast.Net.Flow.throughput_mbit_s *. 0.6));
    Alcotest.test_case "zero bytes completes instantly" `Quick (fun () ->
        let e = engine () in
        let r = Net.Flow.run e ~link:Net.Link.loopback ~bytes:0 () in
        Alcotest.(check int) "no bytes" 0 r.Net.Flow.bytes);
    Alcotest.test_case "flow advances virtual time" `Quick (fun () ->
        let e = engine () in
        let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:10. in
        let before = Sim.Engine.now (Sim.Ctx.engine e) in
        ignore (Net.Flow.run e ~link ~bytes:(10 * 1024 * 1024) ());
        let elapsed = Sim.Time.diff (Sim.Engine.now (Sim.Ctx.engine e)) before in
        Alcotest.(check bool) "about 1s" true
          (Float.abs (Sim.Time.to_s elapsed -. 1.) < 0.05));
    Alcotest.test_case "no injector means no fault accounting" `Quick (fun () ->
        let e = engine () in
        let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:100. in
        let r = Net.Flow.run e ~link ~bytes:(8 * 1024 * 1024) () in
        Alcotest.(check int) "no retransmits" 0 r.Net.Flow.retransmits;
        Alcotest.(check int64) "no downtime" 0L (Sim.Time.to_ns r.Net.Flow.link_downtime));
    Alcotest.test_case "lossy flow delivers every byte, later" `Quick (fun () ->
        let bytes = 16 * 1024 * 1024 in
        let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:100. in
        let clean = Net.Flow.run (engine ()) ~link ~bytes () in
        let e = engine () in
        let fault = Sim.Fault.create Sim.Fault.lossy (Sim.Ctx.fork_rng e) in
        let r = Net.Flow.run e ~link ~fault ~bytes () in
        Alcotest.(check int) "all bytes arrive" bytes r.Net.Flow.bytes;
        Alcotest.(check bool) "no faster than fault-free" true
          (Sim.Time.to_ns r.Net.Flow.elapsed >= Sim.Time.to_ns clean.Net.Flow.elapsed));
    Alcotest.test_case "an outage shows up as link downtime" `Quick (fun () ->
        let e = engine () in
        (* mean 50 ms between failures over a ~1 s stream: the cut is
           certain for this seed, and the schedule is deterministic *)
        let profile =
          { Sim.Fault.lossy with Sim.Fault.mtbf = Some (Sim.Time.ms 50.); mttr = Sim.Time.ms 200. }
        in
        let fault = Sim.Fault.create profile (Sim.Ctx.fork_rng e) in
        let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:10. in
        let r = Net.Flow.run e ~link ~fault ~bytes:(10 * 1024 * 1024) () in
        Alcotest.(check bool) "downtime recorded" true
          (Sim.Time.to_ns r.Net.Flow.link_downtime > 0L);
        Alcotest.(check bool) "interrupted chunks were resent" true
          (r.Net.Flow.retransmits > 0));
  ]

(* ---- burst batching ---- *)

let burst_tests =
  [
    Alcotest.test_case "burst size never changes a fault-free flow's timing" `Quick (fun () ->
        (* the batched sender must sum exactly the per-chunk delays the
           chunk-at-a-time sender would schedule, so elapsed time is
           independent of burst_chunks - including with jitter, where
           the RNG draws must happen in the same chunk order *)
        let bytes = (16 * 1024 * 1024) + 12345 in
        let link = Net.Link.make ~latency:(Sim.Time.us 200.) ~bandwidth_mbytes_per_s:117. in
        let elapsed burst_chunks noise_rsd =
          let e = engine () in
          let rng = Sim.Rng.create 42 in
          let r = Net.Flow.run e ~link ~burst_chunks ~noise_rsd ~rng ~bytes () in
          Sim.Time.to_ns r.Net.Flow.elapsed
        in
        List.iter
          (fun rsd ->
            let one = elapsed 1 rsd in
            Alcotest.(check int64) "burst 16" one (elapsed 16 rsd);
            Alcotest.(check int64) "burst 7" one (elapsed 7 rsd);
            Alcotest.(check int64) "burst 1000" one (elapsed 1000 rsd))
          [ 0.; 0.3 ]);
    Alcotest.test_case "burst_chunks below 1 raises" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Net.Flow.run (engine ()) ~link:Net.Link.loopback ~burst_chunks:0 ~bytes:1 ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "faulted flows ignore burst_chunks" `Quick (fun () ->
        (* fault decisions are per-chunk and time-dependent, so the
           faulted path keeps chunk-at-a-time pacing: any burst size
           must reproduce the burst-1 schedule exactly *)
        let bytes = 8 * 1024 * 1024 in
        let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:100. in
        let elapsed burst_chunks =
          let e = engine () in
          let fault = Sim.Fault.create Sim.Fault.lossy (Sim.Rng.create 7) in
          let r = Net.Flow.run e ~link ~burst_chunks ~fault ~bytes () in
          (Sim.Time.to_ns r.Net.Flow.elapsed, r.Net.Flow.retransmits)
        in
        let t1, rt1 = elapsed 1 in
        let t64, rt64 = elapsed 64 in
        Alcotest.(check int64) "same elapsed" t1 t64;
        Alcotest.(check int) "same retransmits" rt1 rt64;
        Alcotest.(check bool) "faults actually fired" true (rt1 > 0));
    Alcotest.test_case "send_burst delivers every packet in order, one event" `Quick
      (fun () ->
        let e, sw = mk_world () in
        let n = Net.Fabric.Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
        Net.Fabric.Node.attach n sw;
        let got = ref [] in
        Net.Fabric.Node.listen n 80 (fun p -> got := p.Net.Packet.payload :: !got);
        let pkt id payload =
          Net.Packet.make ~id
            ~src:(Net.Packet.endpoint "x" 1)
            ~dst:(Net.Packet.endpoint "10.0.0.1" 80)
            payload
        in
        Net.Fabric.Switch.send_burst sw [ pkt 1 "a"; pkt 2 "b"; pkt 3 "c" ];
        Alcotest.(check int) "one event pending" 1
          (Sim.Engine.pending_events (Sim.Ctx.engine e));
        ignore (Sim.Engine.run (Sim.Ctx.engine e));
        Alcotest.(check (list string)) "in order" [ "a"; "b"; "c" ] (List.rev !got);
        Alcotest.(check int) "delivered counted" 3 (Net.Fabric.Switch.packets_delivered sw));
    Alcotest.test_case "send_burst pays latency once plus summed serialisation" `Quick
      (fun () ->
        let e = engine () in
        let link = Net.Link.make ~latency:(Sim.Time.ms 1.) ~bandwidth_mbytes_per_s:1. in
        let sw = Net.Fabric.Switch.create e ~name:"sw" ~link in
        let n = Net.Fabric.Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"a" in
        Net.Fabric.Node.attach n sw;
        let at = ref Sim.Time.zero in
        Net.Fabric.Node.listen n 1 (fun _ -> at := Sim.Engine.now (Sim.Ctx.engine e));
        let pkt id =
          Net.Packet.make ~id ~size_bytes:(512 * 1024)
            ~src:(Net.Packet.endpoint "x" 1)
            ~dst:(Net.Packet.endpoint "a" 1)
            "p"
        in
        Net.Fabric.Switch.send_burst sw [ pkt 1; pkt 2 ];
        ignore (Sim.Engine.run (Sim.Ctx.engine e));
        (* 1 ms latency + 2 x 0.5 s serialisation at 1 MB/s *)
        let expect =
          Sim.Time.add (Sim.Time.ms 1.)
            (Sim.Time.add
               (Net.Link.serialisation_time link (512 * 1024))
               (Net.Link.serialisation_time link (512 * 1024)))
        in
        Alcotest.(check int64) "arrival" (Sim.Time.to_ns expect) (Sim.Time.to_ns !at));
    Alcotest.test_case "send_burst drops unknown addresses at send time" `Quick (fun () ->
        let e, sw = mk_world () in
        let n = Net.Fabric.Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
        Net.Fabric.Node.attach n sw;
        let pkt id addr =
          Net.Packet.make ~id
            ~src:(Net.Packet.endpoint "x" 1)
            ~dst:(Net.Packet.endpoint addr 80)
            "?"
        in
        Net.Fabric.Switch.send_burst sw [ pkt 1 "10.0.0.1"; pkt 2 "10.9.9.9"; pkt 3 "10.0.0.1" ];
        Alcotest.(check int) "dropped immediately" 1 (Net.Fabric.Switch.packets_dropped sw);
        ignore (Sim.Engine.run (Sim.Ctx.engine e));
        Alcotest.(check int) "survivors delivered" 2 (Net.Fabric.Switch.packets_delivered sw));
    Alcotest.test_case "empty burst is a no-op" `Quick (fun () ->
        let e, sw = mk_world () in
        Net.Fabric.Switch.send_burst sw [];
        Alcotest.(check int) "no events" 0 (Sim.Engine.pending_events (Sim.Ctx.engine e));
        Alcotest.(check int) "nothing dropped" 0 (Net.Fabric.Switch.packets_dropped sw));
  ]

let net_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random NAT chains deliver to the final hop" ~count:100
         QCheck.(pair small_int (int_range 1 6))
         (fun (seed, hops) ->
           (* build a chain of [hops] gateways, each forwarding port 1000
              to the next node, ending at a listener *)
           let e = Sim.Ctx.create ~seed () in
           let sw = Net.Fabric.Switch.create e ~name:"sw" ~link:Net.Link.loopback in
           let nodes =
             List.init (hops + 1) (fun i ->
                 let n =
                   Net.Fabric.Node.create (Sim.Ctx.engine e) ~name:(Printf.sprintf "n%d" i)
                     ~addr:(Printf.sprintf "10.0.0.%d" (i + 1))
                 in
                 Net.Fabric.Node.attach n sw;
                 n)
           in
           let rec wire = function
             | a :: (b :: _ as rest) ->
               Net.Fabric.Node.add_forward a ~from_port:1000
                 ~to_:(Net.Packet.endpoint (Net.Fabric.Node.addr b) 1000)
                 ~via:sw;
               wire rest
             | [ _ ] | [] -> ()
           in
           wire nodes;
           let got = ref false in
           let last = List.nth nodes hops in
           Net.Fabric.Node.listen last 1000 (fun _ -> got := true);
           Net.Fabric.Switch.send sw
             (Net.Packet.make ~id:1
                ~src:(Net.Packet.endpoint "src" 1)
                ~dst:(Net.Packet.endpoint "10.0.0.1" 1000)
                "x");
           ignore (Sim.Engine.run (Sim.Ctx.engine e));
           !got));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"flow time scales linearly with bytes" ~count:100
         QCheck.(int_range 1 64)
         (fun mib ->
           let e = Sim.Ctx.create () in
           let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:64. in
           let r = Net.Flow.run e ~link ~bytes:(mib * 1024 * 1024) () in
           Float.abs (Sim.Time.to_s r.Net.Flow.elapsed -. (float_of_int mib /. 64.)) < 0.01));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"taps never duplicate deliveries" ~count:100
         QCheck.(int_range 0 5)
         (fun n_taps ->
           let e = Sim.Ctx.create () in
           let sw = Net.Fabric.Switch.create e ~name:"sw" ~link:Net.Link.loopback in
           let node = Net.Fabric.Node.create (Sim.Ctx.engine e) ~name:"n" ~addr:"10.0.0.1" in
           Net.Fabric.Node.attach node sw;
           for i = 1 to n_taps do
             Net.Fabric.Node.add_tap node ~name:(string_of_int i) (fun _ -> Net.Fabric.Forward)
           done;
           let count = ref 0 in
           Net.Fabric.Node.listen node 80 (fun _ -> incr count);
           Net.Fabric.Switch.send sw
             (Net.Packet.make ~id:1
                ~src:(Net.Packet.endpoint "s" 1)
                ~dst:(Net.Packet.endpoint "10.0.0.1" 80)
                "x");
           ignore (Sim.Engine.run (Sim.Ctx.engine e));
           !count = 1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"faulted flows deliver every byte under any seed" ~count:50
         QCheck.(pair small_int (int_range 1 16))
         (fun (seed, mib) ->
           let bytes = mib * 1024 * 1024 in
           let link = Net.Link.make ~latency:Sim.Time.zero ~bandwidth_mbytes_per_s:64. in
           let e = Sim.Ctx.create ~seed () in
           let fault = Sim.Fault.create Sim.Fault.flaky (Sim.Ctx.fork_rng e) in
           let r = Net.Flow.run e ~link ~fault ~bytes () in
           (* faults cost time, never data: the full payload lands, the
              stream sat through at least the injected downtime, and a
              recorded outage always implies a resent chunk *)
           r.Net.Flow.bytes = bytes
           && Sim.Time.to_ns r.Net.Flow.elapsed >= Sim.Time.to_ns r.Net.Flow.link_downtime
           && (Sim.Time.to_ns r.Net.Flow.link_downtime = 0L || r.Net.Flow.retransmits > 0)));
  ]

let () =
  Alcotest.run "net"
    [
      ("link", link_tests);
      ("packet", packet_tests);
      ("fabric", fabric_tests);
      ("flow", flow_tests);
      ("burst", burst_tests);
      ("properties", net_props);
    ]
