(* Sim.Telemetry: registry semantics, exporters, merging, and the
   determinism contract the observability layer promises - same seed =>
   byte-equal exports whatever --jobs is, and a disabled sink that
   changes nothing. *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

let registry_tests =
  let open Sim.Telemetry in
  [
    Alcotest.test_case "counter registers at zero" `Quick (fun () ->
        let t = create () in
        let _ = counter (Some t) ~component:"vmm" "exits_total" in
        Alcotest.(check int) "one series" 1 (series_count t);
        Alcotest.(check (option (float 0.))) "starts at 0" (Some 0.)
          (value t "vmm_exits_total"));
    Alcotest.test_case "incr and add accumulate" `Quick (fun () ->
        let t = create () in
        let c = counter (Some t) ~component:"x" "n_total" in
        incr c;
        add c 4;
        addf c 0.5;
        Alcotest.(check (option (float 1e-9))) "5.5" (Some 5.5) (value t "x_n_total"));
    Alcotest.test_case "negative increments raise" `Quick (fun () ->
        let t = create () in
        let c = counter (Some t) ~component:"x" "n_total" in
        Alcotest.check_raises "add -1"
          (Invalid_argument "Telemetry.add: counters are monotonic") (fun () -> add c (-1)));
    Alcotest.test_case "same series, one entry; labels sorted" `Quick (fun () ->
        let t = create () in
        let a = counter (Some t) ~labels:[ ("b", "2"); ("a", "1") ] ~component:"c" "n_total" in
        let b = counter (Some t) ~labels:[ ("a", "1"); ("b", "2") ] ~component:"c" "n_total" in
        incr a;
        incr b;
        Alcotest.(check int) "one series" 1 (series_count t);
        Alcotest.(check (option (float 0.))) "both handles hit it" (Some 2.)
          (value t {|c_n_total{a="1",b="2"}|}));
    Alcotest.test_case "kind mismatch raises" `Quick (fun () ->
        let t = create () in
        let _ = counter (Some t) ~component:"c" "x" in
        Alcotest.(check bool) "re-register as gauge rejected" true
          (try
             let _ = gauge (Some t) ~component:"c" "x" in
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "gauge takes last value" `Quick (fun () ->
        let t = create () in
        let g = gauge (Some t) ~component:"vmm" "vms_running" in
        set g 3.;
        set g 2.;
        Alcotest.(check (option (float 0.))) "last write" (Some 2.)
          (value t "vmm_vms_running"));
    Alcotest.test_case "histogram buckets and count" `Quick (fun () ->
        let t = create () in
        let h = histogram (Some t) ~buckets:[ 1.; 10. ] ~component:"m" "dur_seconds" in
        List.iter (observe h) [ 0.5; 5.; 50. ];
        Alcotest.(check (option int)) "count" (Some 3) (histogram_count t "m_dur_seconds");
        let text = prometheus_string t in
        Alcotest.(check bool) "le=1 cumulative" true
          (contains_sub text {|m_dur_seconds_bucket{le="1"} 1|});
        Alcotest.(check bool) "le=10 cumulative" true
          (contains_sub text {|m_dur_seconds_bucket{le="10"} 2|});
        Alcotest.(check bool) "+Inf" true
          (contains_sub text {|m_dur_seconds_bucket{le="+Inf"} 3|});
        Alcotest.(check bool) "sum" true (contains_sub text "m_dur_seconds_sum 55.5");
        Alcotest.(check bool) "count line" true (contains_sub text "m_dur_seconds_count 3"));
    Alcotest.test_case "disabled sink: no-op handles, no state" `Quick (fun () ->
        let c = Sim.Telemetry.counter None ~component:"x" "n_total" in
        let g = Sim.Telemetry.gauge None ~component:"x" "g" in
        let h = Sim.Telemetry.histogram None ~component:"x" "h" in
        incr c;
        add c 100;
        set g 5.;
        observe h 1.;
        span None ~component:"x" ~name:"s" ~start:Sim.Time.zero ~stop:(Sim.Time.ms 1.) ();
        Alcotest.(check bool) "enabled None" false (enabled None));
  ]

let export_tests =
  let open Sim.Telemetry in
  [
    Alcotest.test_case "prometheus output is sorted and typed" `Quick (fun () ->
        let t = create () in
        incr (counter (Some t) ~component:"zz" "last_total");
        incr (counter (Some t) ~component:"aa" "first_total");
        let text = prometheus_string t in
        let a = ref max_int and z = ref min_int in
        String.iteri
          (fun i _ ->
            if i + 14 <= String.length text && String.sub text i 14 = "aa_first_total" then
              a := Stdlib.min !a i;
            if i + 13 <= String.length text && String.sub text i 13 = "zz_last_total" then
              z := Stdlib.max !z i)
          text;
        Alcotest.(check bool) "aa before zz" true (!a < !z);
        Alcotest.(check bool) "TYPE comment" true
          (contains_sub text "# TYPE aa_first_total counter"));
    Alcotest.test_case "jsonl spans parse-shaped and escaped" `Quick (fun () ->
        let t = create () in
        span (Some t) ~component:"net" ~name:"flow" ~start:(Sim.Time.ms 1.)
          ~stop:(Sim.Time.ms 2.)
          ~fields:[ ("note", "a\"b\\c\nd") ]
          ();
        let text = jsonl_string t in
        Alcotest.(check bool) "start_ns" true (contains_sub text {|"start_ns":1000000|});
        Alcotest.(check bool) "end_ns" true (contains_sub text {|"end_ns":2000000|});
        Alcotest.(check bool) "escaped" true (contains_sub text {|a\"b\\c\nd|});
        (* one object per line, no trailing blank payload *)
        let lines = String.split_on_char '\n' (String.trim text) in
        Alcotest.(check int) "one line" 1 (List.length lines);
        let line = List.hd lines in
        Alcotest.(check bool) "object" true
          (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}'));
    Alcotest.test_case "with_span wraps and skips on raise" `Quick (fun () ->
        let t = create () in
        let clock = ref Sim.Time.zero in
        let now () = !clock in
        let v =
          with_span (Some t) ~now ~component:"c" ~name:"ok" (fun () ->
              clock := Sim.Time.ms 5.;
              42)
        in
        Alcotest.(check int) "result" 42 v;
        Alcotest.(check int) "recorded" 1 (spans_recorded t);
        (try
           with_span (Some t) ~now ~component:"c" ~name:"boom" (fun () -> failwith "x")
         with Failure _ -> ());
        Alcotest.(check int) "no span on raise" 1 (spans_recorded t));
    Alcotest.test_case "span capacity drops oldest" `Quick (fun () ->
        let t = create ~span_capacity:2 () in
        for i = 1 to 5 do
          span (Some t) ~component:"c" ~name:(string_of_int i) ~start:Sim.Time.zero
            ~stop:Sim.Time.zero ()
        done;
        Alcotest.(check int) "kept" 2 (spans_recorded t);
        Alcotest.(check int) "dropped" 3 (spans_dropped t);
        let text = jsonl_string t in
        Alcotest.(check bool) "oldest gone" false (contains_sub text {|"name":"1"|});
        Alcotest.(check bool) "newest kept" true (contains_sub text {|"name":"5"|}));
  ]

let merge_tests =
  let open Sim.Telemetry in
  [
    Alcotest.test_case "merge adds counters, tags spans" `Quick (fun () ->
        let parent = create () in
        incr (counter (Some parent) ~component:"c" "n_total");
        let child = create_like parent in
        add (counter (Some child) ~component:"c" "n_total") 2;
        span (Some child) ~component:"c" ~name:"s" ~start:Sim.Time.zero
          ~stop:(Sim.Time.ms 1.) ();
        merge_into ~into:parent ~span_fields:[ ("trial", "7") ] child;
        Alcotest.(check (option (float 0.))) "3" (Some 3.) (value parent "c_n_total");
        Alcotest.(check bool) "trial tag" true
          (contains_sub (jsonl_string parent) {|"trial":"7"|}));
    Alcotest.test_case "merge is bucket-wise for histograms" `Quick (fun () ->
        let parent = create () in
        let hp = histogram (Some parent) ~buckets:[ 1. ] ~component:"m" "h" in
        observe hp 0.5;
        let child = create_like parent in
        let hc = histogram (Some child) ~buckets:[ 1. ] ~component:"m" "h" in
        observe hc 2.;
        merge_into ~into:parent child;
        Alcotest.(check (option int)) "count 2" (Some 2) (histogram_count parent "m_h"));
  ]

(* The tentpole determinism contract, at the scenario level: a full
   detect trial batch exports byte-identical telemetry at any worker
   count, because per-trial sinks are merged in trial order. *)
let determinism_tests =
  let run_batch ~jobs =
    let t = Sim.Telemetry.create () in
    let ctx = Sim.Ctx.create ~seed:1 ~telemetry:t () in
    let _ =
      Sim.Parallel.map_ctx ~jobs ~ctx ~trials:3
        (fun _ child ->
          let sc = Cloudskulk.Scenarios.clean child in
          match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
          | Ok o -> Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict
          | Error e -> e)
    in
    (Sim.Telemetry.prometheus_string t, Sim.Telemetry.jsonl_string t)
  in
  [
    Alcotest.test_case "jobs=1 and jobs=4 exports are byte-equal" `Slow (fun () ->
        let m1, s1 = run_batch ~jobs:1 in
        let m4, s4 = run_batch ~jobs:4 in
        Alcotest.(check string) "metrics" m1 m4;
        Alcotest.(check string) "spans" s1 s4);
    Alcotest.test_case "scenario metrics cover the layers" `Slow (fun () ->
        let t = Sim.Telemetry.create () in
        let sc = Cloudskulk.Scenarios.infected (Sim.Ctx.create ~seed:3 ~telemetry:t ()) in
        (match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e);
        let text = Sim.Telemetry.prometheus_string t in
        List.iter
          (fun series ->
            Alcotest.(check bool) (series ^ " present") true (contains_sub text series))
          [
            "vmm_exits_total";
            "vmm_vm_launches_total";
            "ksm_pages_merged_total";
            "ksm_scan_passes_total";
            "memory_cow_breaks_total";
            "memory_dirty_drains_total";
            "migration_rounds_total";
            "migration_outcomes_total";
            "net_packets_delivered_total";
            "cloudskulk_verdicts_total";
            "cloudskulk_probe_write_ns";
          ]);
    Alcotest.test_case "disabled telemetry leaves behaviour unchanged" `Slow (fun () ->
        let verdict telemetry =
          let sc = Cloudskulk.Scenarios.infected (Sim.Ctx.create ~seed:5 ?telemetry ()) in
          match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
          | Ok o ->
            ( Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict,
              Sim.Time.to_ns o.Cloudskulk.Dedup_detector.elapsed )
          | Error e -> (e, 0L)
        in
        let off = verdict None in
        let on_ = verdict (Some (Sim.Telemetry.create ())) in
        Alcotest.(check string) "same verdict" (fst off) (fst on_);
        Alcotest.(check int64) "same sim time" (snd off) (snd on_));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("registry", registry_tests);
      ("export", export_tests);
      ("merge", merge_tests);
      ("determinism", determinism_tests);
    ]
