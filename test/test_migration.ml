(* Tests for live migration: the registry (endpoint resolution through
   forwarding chains), pre-copy (rounds, convergence, content transfer,
   state machine), post-copy, and the monitor wiring. *)

let small_config ?(name = "guest0") ?(memory_mb = 8) () =
  { (Vmm.Qemu_config.default ~name) with Vmm.Qemu_config.memory_mb }

let mk_pair ?(nested = false) ?(memory_mb = 8) () =
  Vmm.Layers.migration_pair ~ksm_config:Memory.Ksm.fast_config
    ~config:(small_config ~memory_mb ()) ~nested_dest:nested (Sim.Ctx.create ())

let migrate_exn ?config ?fault ctx ~source ~dest =
  match Migration.Precopy.migrate ?config ?fault ctx ~source ~dest () with
  | Ok o -> Migration.Outcome.stats_exn o
  | Error e -> Alcotest.fail e

let registry_tests =
  [
    Alcotest.test_case "direct listener resolves" `Quick (fun () ->
        let mp = mk_pair () in
        let reg = Migration.Registry.create () in
        Migration.Registry.register_incoming reg ~addr:"10.0.0.2" ~port:5601
          mp.Vmm.Layers.mp_dest;
        (match Migration.Registry.resolve reg ~addr:"10.0.0.2" ~port:5601 with
        | Ok vm -> Alcotest.(check string) "dest" "dest" (Vmm.Vm.name vm)
        | Error e -> Alcotest.fail e));
    Alcotest.test_case "forward chain resolves with hop count" `Quick (fun () ->
        let mp = mk_pair () in
        let reg = Migration.Registry.create () in
        Migration.Registry.register_incoming reg ~addr:"10.0.0.7" ~port:5601
          mp.Vmm.Layers.mp_dest;
        Migration.Registry.add_forward reg ~addr:"192.168.1.100" ~port:5600 ~to_addr:"10.0.0.7"
          ~to_port:5601;
        (match Migration.Registry.resolve reg ~addr:"192.168.1.100" ~port:5600 with
        | Ok vm -> Alcotest.(check string) "dest" "dest" (Vmm.Vm.name vm)
        | Error e -> Alcotest.fail e);
        Alcotest.(check int) "one hop" 1
          (Migration.Registry.hops reg ~addr:"192.168.1.100" ~port:5600));
    Alcotest.test_case "nothing listening" `Quick (fun () ->
        let reg = Migration.Registry.create () in
        Alcotest.(check bool) "refused" true
          (Result.is_error (Migration.Registry.resolve reg ~addr:"1.2.3.4" ~port:1)));
    Alcotest.test_case "forwarding loop detected" `Quick (fun () ->
        let reg = Migration.Registry.create () in
        Migration.Registry.add_forward reg ~addr:"a" ~port:1 ~to_addr:"b" ~to_port:2;
        Migration.Registry.add_forward reg ~addr:"b" ~port:2 ~to_addr:"a" ~to_port:1;
        Alcotest.(check bool) "loop error" true
          (Result.is_error (Migration.Registry.resolve reg ~addr:"a" ~port:1)));
    Alcotest.test_case "unregister removes listener" `Quick (fun () ->
        let mp = mk_pair () in
        let reg = Migration.Registry.create () in
        Migration.Registry.register_incoming reg ~addr:"x" ~port:1 mp.Vmm.Layers.mp_dest;
        Migration.Registry.unregister reg ~addr:"x" ~port:1;
        Alcotest.(check bool) "gone" true
          (Result.is_error (Migration.Registry.resolve reg ~addr:"x" ~port:1)));
  ]

let precopy_tests =
  [
    Alcotest.test_case "idle migration completes and moves contents" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        let source = mp.mp_source and dest = mp.mp_dest in
        (* plant recognisable content in the source *)
        let c = Memory.Page.Content.of_int 1234 in
        ignore (Memory.Address_space.write (Vmm.Vm.ram source) 7 c);
        let r = migrate_exn ctx ~source ~dest in
        Alcotest.(check bool) "converged" true r.Migration.Precopy.converged;
        Alcotest.(check bool) "dest running" true (Vmm.Vm.state dest = Vmm.Vm.Running);
        Alcotest.(check bool) "source paused" true (Vmm.Vm.state source = Vmm.Vm.Paused);
        Alcotest.(check bool) "content moved" true
          (Memory.Page.Content.equal c (Memory.Address_space.read (Vmm.Vm.ram dest) 7)));
    Alcotest.test_case "all pages sent at least once" `Quick (fun () ->
        let mp = mk_pair () in
        let r = migrate_exn mp.Vmm.Layers.mp_ctx ~source:mp.mp_source ~dest:mp.mp_dest in
        let pages = Memory.Address_space.pages (Vmm.Vm.ram mp.mp_source) in
        Alcotest.(check bool) "at least full RAM" true (r.Migration.Precopy.total_pages_sent >= pages));
    Alcotest.test_case "downtime below budget when converged" `Quick (fun () ->
        let mp = mk_pair () in
        let r = migrate_exn mp.Vmm.Layers.mp_ctx ~source:mp.mp_source ~dest:mp.mp_dest in
        Alcotest.(check bool) "within budget" true
          Sim.Time.(
            r.Migration.Precopy.downtime
            <= Sim.Time.add (Sim.Time.ms 300.) (Sim.Time.ms 50.)));
    Alcotest.test_case "dirtying workload forces extra rounds" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        let source = mp.mp_source in
        let env =
          Workload.Exec_env.make ~vm:source ~ctx ~level:(Vmm.Vm.level source)
            ~ram:(Vmm.Vm.ram source)
            ~rng:(Sim.Ctx.fork_rng ctx) ()
        in
        let wl = Workload.Background.start env (Workload.Kernel_compile.background ()) in
        (* an 8 MB guest fits inside the default 300 ms downtime budget,
           so tighten it to force iterative rounds *)
        let config =
          { Migration.Precopy.default_config with
            Migration.Precopy.max_downtime = Sim.Time.ms 2. }
        in
        let r = migrate_exn ~config ctx ~source ~dest:mp.mp_dest in
        Workload.Background.stop wl;
        Alcotest.(check bool) "more than 2 rounds" true
          (List.length r.Migration.Precopy.rounds > 2));
    Alcotest.test_case "non-incoming destination rejected" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        (* complete once, then try again: dest is now Running *)
        ignore (migrate_exn ctx ~source:mp.mp_source ~dest:mp.mp_dest);
        (match Vmm.Vm.resume mp.mp_source with Ok () -> () | Error e -> Alcotest.fail e);
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Migration.Precopy.migrate ctx ~source:mp.mp_source ~dest:mp.mp_dest ())));
    Alcotest.test_case "incompatible configs rejected" `Quick (fun () ->
        let ctx = Sim.Ctx.create () in
        let uplink = Net.Fabric.Switch.create ctx ~name:"up" ~link:Net.Link.lan_1gbe in
        let host =
          Vmm.Hypervisor.create_l0 ~ksm_config:Memory.Ksm.fast_config ctx ~name:"h" ~uplink
            ~addr:"192.168.1.100"
        in
        let src =
          Result.get_ok (Vmm.Hypervisor.launch host (small_config ~name:"src" ~memory_mb:8 ()))
        in
        let dst_cfg =
          Vmm.Qemu_config.with_incoming (small_config ~name:"dst" ~memory_mb:16 ()) ~port:5601
        in
        let dst = Result.get_ok (Vmm.Hypervisor.launch host dst_cfg) in
        match Migration.Precopy.migrate ctx ~source:src ~dest:dst () with
        | Error e ->
          Alcotest.(check bool) "mentions memory" true
            (String.length e > 0)
        | Ok _ -> Alcotest.fail "should refuse");
    Alcotest.test_case "guest identity follows the migration" `Quick (fun () ->
        let mp = mk_pair () in
        Vmm.Vm.set_os_release mp.mp_source "MarkedOS 9.9";
        ignore (migrate_exn mp.Vmm.Layers.mp_ctx ~source:mp.mp_source ~dest:mp.mp_dest);
        Alcotest.(check string) "os release moved" "MarkedOS 9.9"
          (Vmm.Vm.os_release mp.mp_dest));
    Alcotest.test_case "nested destination slower than flat" `Quick (fun () ->
        let flat = mk_pair ~nested:false () in
        let r_flat =
          migrate_exn flat.Vmm.Layers.mp_ctx ~source:flat.mp_source ~dest:flat.mp_dest
        in
        let nested = mk_pair ~nested:true () in
        let r_nested =
          migrate_exn nested.Vmm.Layers.mp_ctx ~source:nested.mp_source
            ~dest:nested.mp_dest
        in
        Alcotest.(check bool) "L0-L1 > L0-L0" true
          Sim.Time.(r_nested.Migration.Precopy.total_time > r_flat.Migration.Precopy.total_time));
    Alcotest.test_case "estimated_idle_time matches an idle run's scale" `Quick (fun () ->
        let mp = mk_pair () in
        let pages = Memory.Address_space.pages (Vmm.Vm.ram mp.mp_source) in
        let est = Sim.Time.to_s (Migration.Precopy.estimated_idle_time ~pages ()) in
        let r = migrate_exn mp.Vmm.Layers.mp_ctx ~source:mp.mp_source ~dest:mp.mp_dest in
        let actual = Sim.Time.to_s r.Migration.Precopy.total_time in
        Alcotest.(check bool) "within 2x" true (actual < est *. 2. +. 1.));
    Alcotest.test_case "zero page optimization shrinks idle transfer" `Quick (fun () ->
        let mp = mk_pair () in
        let config =
          { Migration.Precopy.default_config with Migration.Precopy.zero_page_optimization = true }
        in
        let r =
          migrate_exn ~config mp.Vmm.Layers.mp_ctx ~source:mp.mp_source ~dest:mp.mp_dest
        in
        (* an idle 8 MB guest is almost all zero pages *)
        let full_bytes = 8 * 1024 * 1024 in
        Alcotest.(check bool) "far less than full" true
          (r.Migration.Precopy.total_bytes_sent < full_bytes / 2));
  ]

let auto_converge_tests =
  let run_with_compile ~auto_converge =
    let mp = mk_pair () in
    let ctx = mp.Vmm.Layers.mp_ctx in
    let source = mp.mp_source in
    let env =
      Workload.Exec_env.make ~vm:source ~ctx ~level:(Vmm.Vm.level source)
        ~ram:(Vmm.Vm.ram source)
        ~rng:(Sim.Ctx.fork_rng ctx) ()
    in
    (* dirty faster than the channel drains so plain pre-copy can never
       converge on its own *)
    let wl =
      Workload.Background.start env
        (Workload.Kernel_compile.background ~pages_per_second:40_000. ())
    in
    let config =
      { Migration.Precopy.default_config with
        Migration.Precopy.max_downtime = Sim.Time.ms 2.;
        max_rounds = 20;
        auto_converge;
      }
    in
    let r = migrate_exn ~config ctx ~source ~dest:mp.mp_dest in
    Workload.Background.stop wl;
    (r, wl, source)
  in
  [
    Alcotest.test_case "auto-converge throttles and converges" `Quick (fun () ->
        let without, _, _ = run_with_compile ~auto_converge:false in
        let with_, wl, source = run_with_compile ~auto_converge:true in
        Alcotest.(check bool) "uncapped run hits the round cap" false
          without.Migration.Precopy.converged;
        Alcotest.(check bool) "throttled run converges" true with_.Migration.Precopy.converged;
        Alcotest.(check bool) "throttle was applied" true
          (with_.Migration.Precopy.max_throttle > 0.1);
        Alcotest.(check bool) "workload lost ticks" true
          (Workload.Background.throttled_ticks wl > 0);
        Alcotest.(check (float 1e-9)) "throttle released afterwards" 0.
          (Vmm.Vm.cpu_throttle source));
    Alcotest.test_case "xbzrle shrinks re-sent bytes" `Quick (fun () ->
        let run ~xbzrle =
          let mp = mk_pair () in
          let ctx = mp.Vmm.Layers.mp_ctx in
          let source = mp.mp_source in
          let env =
            Workload.Exec_env.make ~vm:source ~ctx ~level:(Vmm.Vm.level source)
              ~ram:(Vmm.Vm.ram source)
              ~rng:(Sim.Ctx.fork_rng ctx) ()
          in
          let wl =
            Workload.Background.start env
              (Workload.Kernel_compile.background ~pages_per_second:5000. ())
          in
          let config =
            { Migration.Precopy.default_config with
              Migration.Precopy.max_downtime = Sim.Time.ms 2.;
              xbzrle;
            }
          in
          let r = migrate_exn ~config ctx ~source ~dest:mp.mp_dest in
          Workload.Background.stop wl;
          r
        in
        let plain = run ~xbzrle:false in
        let compressed = run ~xbzrle:true in
        Alcotest.(check bool) "fewer wire bytes" true
          (compressed.Migration.Precopy.total_bytes_sent
          < plain.Migration.Precopy.total_bytes_sent);
        Alcotest.(check bool) "not slower" true
          Sim.Time.(
            compressed.Migration.Precopy.total_time <= plain.Migration.Precopy.total_time));
    Alcotest.test_case "xbzrle never deltas first-time pages" `Quick (fun () ->
        (* an idle migration sends every page exactly once: xbzrle must
           change nothing *)
        let run ~xbzrle =
          let mp = mk_pair () in
          let config = { Migration.Precopy.default_config with Migration.Precopy.xbzrle } in
          migrate_exn ~config mp.Vmm.Layers.mp_ctx ~source:mp.mp_source ~dest:mp.mp_dest
        in
        Alcotest.(check int) "same bytes either way"
          (run ~xbzrle:false).Migration.Precopy.total_bytes_sent
          (run ~xbzrle:true).Migration.Precopy.total_bytes_sent);
    Alcotest.test_case "auto-converge off leaves the throttle untouched" `Quick (fun () ->
        let r, wl, source = run_with_compile ~auto_converge:false in
        Alcotest.(check (float 1e-9)) "no throttle" 0. r.Migration.Precopy.max_throttle;
        Alcotest.(check int) "no lost ticks" 0 (Workload.Background.throttled_ticks wl);
        Alcotest.(check (float 1e-9)) "vm untouched" 0. (Vmm.Vm.cpu_throttle source));
  ]

let migration_props =
  let contents_equal a b =
    let ca = Memory.Address_space.contents a and cb = Memory.Address_space.contents b in
    Array.length ca = Array.length cb && Array.for_all2 Memory.Page.Content.equal ca cb
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"precopy: destination RAM equals source RAM at completion, under random dirtying"
         ~count:15 QCheck.small_int
         (fun seed ->
           let mp = mk_pair ~nested:(seed mod 2 = 0) () in
           let ctx = mp.Vmm.Layers.mp_ctx in
           let source = mp.Vmm.Layers.mp_source in
           (* a random background dirtier *)
           let env =
             Workload.Exec_env.make ~vm:source ~ctx ~level:(Vmm.Vm.level source)
               ~ram:(Vmm.Vm.ram source)
               ~rng:(Sim.Rng.create seed) ()
           in
           let rate = 100. +. float_of_int (seed mod 7) *. 400. in
           let wl =
             Workload.Background.start env
               (Workload.Kernel_compile.background ~pages_per_second:rate ())
           in
           let ok =
             match Migration.Precopy.migrate ctx ~source ~dest:mp.Vmm.Layers.mp_dest () with
             | Ok _ ->
               (* the source is paused at completion, so the final
                  stop-and-copy must have left both sides identical *)
               contents_equal (Vmm.Vm.ram source) (Vmm.Vm.ram mp.Vmm.Layers.mp_dest)
             | Error _ -> false
           in
           Workload.Background.stop wl;
           ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"postcopy: destination RAM equals source RAM at completion"
         ~count:10 QCheck.small_int
         (fun seed ->
           let mp = mk_pair ~nested:(seed mod 2 = 1) () in
           let ctx = mp.Vmm.Layers.mp_ctx in
           let source = mp.Vmm.Layers.mp_source in
           let rng = Sim.Rng.create seed in
           (* pre-dirty the source with random content *)
           for _ = 1 to 200 do
             let i = Sim.Rng.int rng (Memory.Address_space.pages (Vmm.Vm.ram source)) in
             ignore
               (Memory.Address_space.write (Vmm.Vm.ram source) i
                  (Memory.Page.Content.random rng))
           done;
           match Migration.Postcopy.migrate ctx ~source ~dest:mp.Vmm.Layers.mp_dest () with
           | Ok _ -> contents_equal (Vmm.Vm.ram source) (Vmm.Vm.ram mp.Vmm.Layers.mp_dest)
           | Error _ -> false));
  ]

let postcopy_tests =
  [
    Alcotest.test_case "postcopy completes with tiny downtime" `Quick (fun () ->
        let mp = mk_pair () in
        let c = Memory.Page.Content.of_int 5 in
        ignore (Memory.Address_space.write (Vmm.Vm.ram mp.mp_source) 3 c);
        (match
           Migration.Postcopy.migrate mp.Vmm.Layers.mp_ctx ~source:mp.mp_source
             ~dest:mp.mp_dest ()
         with
        | Error e -> Alcotest.fail e
        | Ok o ->
          let r = Migration.Outcome.stats_exn o in
          Alcotest.(check bool) "downtime < 1s" true
            Sim.Time.(r.Migration.Postcopy.downtime < Sim.Time.s 1.);
          Alcotest.(check bool) "dest running" true
            (Vmm.Vm.state mp.mp_dest = Vmm.Vm.Running);
          Alcotest.(check bool) "all pages sent" true
            (r.Migration.Postcopy.total_pages_sent
            = Memory.Address_space.pages (Vmm.Vm.ram mp.mp_source));
          Alcotest.(check bool) "content moved" true
            (Memory.Page.Content.equal c (Memory.Address_space.read (Vmm.Vm.ram mp.mp_dest) 3))));
    Alcotest.test_case "postcopy downtime far below precopy total" `Quick (fun () ->
        let mp1 = mk_pair () in
        let pre = migrate_exn mp1.Vmm.Layers.mp_ctx ~source:mp1.mp_source ~dest:mp1.mp_dest in
        let mp2 = mk_pair () in
        let post =
          Migration.Outcome.stats_exn
            (Result.get_ok
               (Migration.Postcopy.migrate mp2.Vmm.Layers.mp_ctx ~source:mp2.mp_source
                  ~dest:mp2.mp_dest ()))
        in
        Alcotest.(check bool) "resume beats total" true
          Sim.Time.(post.Migration.Postcopy.resume_time < pre.Migration.Precopy.total_time));
  ]

let fault_tests =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  (* outage-only profiles: no loss/jitter, so any behaviour change is
     attributable to the link going down *)
  let outages ~mtbf_ms ~mttr_ms =
    { Sim.Fault.none with
      Sim.Fault.mtbf = Some (Sim.Time.ms mtbf_ms);
      mttr = Sim.Time.ms mttr_ms;
    }
  in
  [
    Alcotest.test_case "fault-free migration is Completed" `Quick (fun () ->
        let mp = mk_pair () in
        match
          Migration.Precopy.migrate mp.Vmm.Layers.mp_ctx ~source:mp.mp_source
            ~dest:mp.mp_dest ()
        with
        | Ok (Migration.Outcome.Completed _ as o) ->
          Alcotest.(check string) "described" "completed" (Migration.Outcome.describe o)
        | Ok o -> Alcotest.fail ("unexpected outcome: " ^ Migration.Outcome.describe o)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "precopy aborts when the channel stays down" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        (* the link dies ~1 ms into every transmission and no retries
           are allowed: the first round must abort the migration *)
        let fault =
          Sim.Fault.create (outages ~mtbf_ms:1. ~mttr_ms:2000.) (Sim.Ctx.fork_rng ctx)
        in
        let config =
          { Migration.Precopy.default_config with Migration.Precopy.max_retransmits = 0 }
        in
        match
          Migration.Precopy.migrate ~config ~fault ctx ~source:mp.mp_source
            ~dest:mp.mp_dest ()
        with
        | Ok
            (Migration.Outcome.Aborted
               { reason = Migration.Outcome.Channel_down _; source_resumed; _ }) ->
          Alcotest.(check bool) "source still owns the guest" true source_resumed;
          Alcotest.(check bool) "source running" true
            (Vmm.Vm.state mp.mp_source = Vmm.Vm.Running);
          Alcotest.(check bool) "dest parked in Incoming" true
            (Vmm.Vm.state mp.mp_dest = Vmm.Vm.Incoming)
        | Ok o -> Alcotest.fail ("expected channel-down abort, got " ^ Migration.Outcome.describe o)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "recovered precopy counts its outages" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        (* a seed whose fault schedule cuts the first round once and
           then lets the retransmission through (fault schedules are a
           pure function of the RNG, so this is stable) *)
        let fault =
          Sim.Fault.create (outages ~mtbf_ms:100. ~mttr_ms:50.) (Sim.Rng.create 21)
        in
        match Migration.Precopy.migrate ~fault ctx ~source:mp.mp_source ~dest:mp.mp_dest () with
        | Ok (Migration.Outcome.Recovered (r, rc)) ->
          Alcotest.(check bool) "outages counted" true (rc.Migration.Outcome.outages > 0);
          Alcotest.(check bool) "retransmissions counted" true
            (rc.Migration.Outcome.retransmissions > 0);
          Alcotest.(check bool) "stall time accounted" true
            Sim.Time.(rc.Migration.Outcome.stalled > Sim.Time.zero);
          Alcotest.(check bool) "guest still moved" true
            (Vmm.Vm.state mp.mp_dest = Vmm.Vm.Running && r.Migration.Precopy.converged)
        | Ok o -> Alcotest.fail ("expected recovery, got " ^ Migration.Outcome.describe o)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "migrate_cancel aborts at a round boundary" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        let source = mp.mp_source in
        (* keep the migration iterating so the cancel lands mid-flight *)
        let env =
          Workload.Exec_env.make ~vm:source ~ctx ~level:(Vmm.Vm.level source)
            ~ram:(Vmm.Vm.ram source)
            ~rng:(Sim.Ctx.fork_rng ctx) ()
        in
        let wl = Workload.Background.start env (Workload.Kernel_compile.background ()) in
        let config =
          { Migration.Precopy.default_config with
            Migration.Precopy.max_downtime = Sim.Time.ms 2. }
        in
        ignore
          (Sim.Engine.schedule_after (Sim.Ctx.engine ctx) (Sim.Time.ms 30.) (fun () ->
               Vmm.Vm.request_migrate_cancel source));
        let r = Migration.Precopy.migrate ~config ctx ~source ~dest:mp.mp_dest () in
        Workload.Background.stop wl;
        (match r with
        | Ok (Migration.Outcome.Aborted { reason = Migration.Outcome.Cancelled n; _ }) ->
          Alcotest.(check bool) "cancelled at a positive round" true (n >= 1);
          Alcotest.(check bool) "source running" true (Vmm.Vm.state source = Vmm.Vm.Running);
          Alcotest.(check bool) "dest untouched" true
            (Vmm.Vm.state mp.mp_dest = Vmm.Vm.Incoming)
        | Ok o -> Alcotest.fail ("expected cancel, got " ^ Migration.Outcome.describe o)
        | Error e -> Alcotest.fail e);
        (* a stale cancel must not poison the next migration *)
        Alcotest.(check bool) "flag consumed" false (Vmm.Vm.migrate_cancel_requested source));
    Alcotest.test_case "postcopy pause and monitor recovery" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        let source = mp.mp_source and dest = mp.mp_dest in
        let rng = Sim.Rng.create 42 in
        for _ = 1 to 200 do
          let i = Sim.Rng.int rng (Memory.Address_space.pages (Vmm.Vm.ram source)) in
          ignore
            (Memory.Address_space.write (Vmm.Vm.ram source) i (Memory.Page.Content.random rng))
        done;
        (* a small working set leaves most pages to the background pull,
           and this seed's schedule severs that pull mid-stream *)
        let fault =
          Sim.Fault.create (outages ~mtbf_ms:100. ~mttr_ms:100.) (Sim.Rng.create 1)
        in
        let config =
          { Migration.Postcopy.default_config with
            Migration.Postcopy.working_set_pages = 256;
            auto_recover = false;
          }
        in
        match Migration.Postcopy.migrate ~config ~fault ctx ~source ~dest () with
        | Ok (Migration.Outcome.Aborted { reason = Migration.Outcome.Postcopy_paused; _ }) ->
          Alcotest.(check bool) "dest postcopy-paused" true
            (Vmm.Vm.state dest = Vmm.Vm.Paused);
          (match Vmm.Monitor.execute dest "migrate_recover" with
          | Vmm.Monitor.Ok_text _ -> ()
          | Vmm.Monitor.Error_text e -> Alcotest.fail e
          | Vmm.Monitor.Quit -> Alcotest.fail "quit");
          Alcotest.(check bool) "dest running after recover" true
            (Vmm.Vm.state dest = Vmm.Vm.Running);
          (* the pull resumed where it stopped: every page moved exactly
             once, none lost, none overwritten twice *)
          let ca = Memory.Address_space.contents (Vmm.Vm.ram source) in
          let cb = Memory.Address_space.contents (Vmm.Vm.ram dest) in
          Alcotest.(check bool) "no page lost or duplicated" true
            (Array.for_all2 Memory.Page.Content.equal ca cb);
          (* the handler is one-shot *)
          (match Vmm.Monitor.execute dest "migrate_recover" with
          | Vmm.Monitor.Error_text _ -> ()
          | _ -> Alcotest.fail "second recover should refuse")
        | Ok o -> Alcotest.fail ("expected postcopy-paused, got " ^ Migration.Outcome.describe o)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "info migrate reports the wired migration" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        let reg = Migration.Registry.create () in
        Migration.Registry.register_incoming reg ~addr:"10.0.0.2" ~port:5601 mp.mp_dest;
        ignore (Migration.Wiring.wire_monitor ctx ~registry:reg ~source:mp.mp_source ());
        (match Vmm.Monitor.execute mp.mp_source "migrate tcp:10.0.0.2:5601" with
        | Vmm.Monitor.Ok_text _ -> ()
        | Vmm.Monitor.Error_text e -> Alcotest.fail e
        | Vmm.Monitor.Quit -> Alcotest.fail "quit");
        match Vmm.Monitor.execute mp.mp_source "info migrate" with
        | Vmm.Monitor.Ok_text s ->
          Alcotest.(check bool) "status line" true (contains s "Migration status: completed");
          Alcotest.(check bool) "transferred bytes line" true (contains s "transferred ram")
        | _ -> Alcotest.fail "info migrate failed");
  ]

let wiring_tests =
  [
    Alcotest.test_case "monitor migrate drives a full migration" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        let reg = Migration.Registry.create () in
        Migration.Registry.register_incoming reg ~addr:"10.0.0.2" ~port:5601 mp.mp_dest;
        let wiring = Migration.Wiring.wire_monitor ctx ~registry:reg ~source:mp.mp_source () in
        (match Vmm.Monitor.execute mp.mp_source "migrate tcp:10.0.0.2:5601" with
        | Vmm.Monitor.Ok_text _ -> ()
        | Vmm.Monitor.Error_text e -> Alcotest.fail e
        | Vmm.Monitor.Quit -> Alcotest.fail "quit");
        Alcotest.(check bool) "dest running" true (Vmm.Vm.state mp.mp_dest = Vmm.Vm.Running);
        (match Migration.Wiring.last_result wiring with
        | Some (Some _, None) -> ()
        | _ -> Alcotest.fail "expected precopy result");
        Alcotest.(check bool) "endpoint consumed" true
          (Result.is_error (Migration.Registry.resolve reg ~addr:"10.0.0.2" ~port:5601)));
    Alcotest.test_case "post-copy strategy selectable" `Quick (fun () ->
        let mp = mk_pair () in
        let ctx = mp.Vmm.Layers.mp_ctx in
        let reg = Migration.Registry.create () in
        Migration.Registry.register_incoming reg ~addr:"10.0.0.2" ~port:5601 mp.mp_dest;
        let wiring =
          Migration.Wiring.wire_monitor
            ~strategy:(Migration.Wiring.Post_copy Migration.Postcopy.default_config) ctx
            ~registry:reg ~source:mp.mp_source ()
        in
        (match Vmm.Monitor.execute mp.mp_source "migrate tcp:10.0.0.2:5601" with
        | Vmm.Monitor.Ok_text _ -> ()
        | Vmm.Monitor.Error_text e -> Alcotest.fail e
        | Vmm.Monitor.Quit -> Alcotest.fail "quit");
        match Migration.Wiring.last_result wiring with
        | Some (None, Some _) -> ()
        | _ -> Alcotest.fail "expected postcopy result");
    Alcotest.test_case "unresolvable endpoint surfaces as monitor error" `Quick (fun () ->
        let mp = mk_pair () in
        let reg = Migration.Registry.create () in
        ignore
          (Migration.Wiring.wire_monitor mp.Vmm.Layers.mp_ctx ~registry:reg
             ~source:mp.mp_source ());
        match Vmm.Monitor.execute mp.mp_source "migrate tcp:9.9.9.9:1" with
        | Vmm.Monitor.Error_text _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let () =
  Alcotest.run "migration"
    [
      ("registry", registry_tests);
      ("precopy", precopy_tests);
      ("auto_converge", auto_converge_tests);
      ("postcopy", postcopy_tests);
      ("faults", fault_tests);
      ("wiring", wiring_tests);
      ("properties", migration_props);
    ]
