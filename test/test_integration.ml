(* Cross-cutting integration tests: the full attack story end to end,
   multi-VM hosts, deeper nesting, trace-based causality checks, and
   failure injection. *)

let target_config ?(name = "guest0") ?(memory_mb = 64) () =
  let c = { (Vmm.Qemu_config.default ~name) with Vmm.Qemu_config.memory_mb } in
  Vmm.Qemu_config.with_hostfwd c [ (2222, 22) ]

let mk_world ?(seed = 42) () =
  let ctx = Sim.Ctx.create ~seed () in
  let trace = Sim.Ctx.trace ctx in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"host" ~uplink ~addr:"192.168.1.100" in
  (ctx, trace, uplink, host, Migration.Registry.create ())

let install_exn ctx host registry =
  match Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0" with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let story_tests =
  [
    Alcotest.test_case "full story: attack, spy, tamper, detect" `Slow (fun () ->
        let ctx, _, uplink, host, registry = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        (* attack *)
        let report = install_exn ctx host registry in
        let ritm = report.Cloudskulk.Install.ritm in
        (* spy: keystrokes over the forwarded SSH path *)
        let kl = Cloudskulk.Services.start_keylogger ritm ~ports:[ 22 ] in
        let user = Net.Fabric.Node.create (Sim.Ctx.engine ctx) ~name:"user" ~addr:"203.0.113.5" in
        Net.Fabric.Node.attach user uplink;
        Net.Fabric.Node.send user ~via:uplink
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "203.0.113.5" 50000)
             ~dst:(Net.Packet.endpoint "192.168.1.100" 2222)
             "sudo rm -rf /tmp/x");
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        Alcotest.(check (list string)) "keystrokes" [ "sudo rm -rf /tmp/x" ]
          (Cloudskulk.Services.keystrokes kl);
        (* tamper: drop victim mail *)
        let stats = Cloudskulk.Services.drop_traffic ritm ~port:25 in
        Cloudskulk.Services.victim_send ritm ~dst:(Net.Packet.endpoint "mail" 25) "msg";
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        Alcotest.(check int) "dropped" 1 stats.Cloudskulk.Services.dropped;
        (* detect from L0 *)
        let victim = ritm.Cloudskulk.Ritm.victim and guestx = ritm.Cloudskulk.Ritm.guestx in
        let env =
          {
            Cloudskulk.Dedup_detector.ctx;
            host;
            deliver_to_guest =
              (fun image ->
                match Vmm.Vm.load_file victim image with
                | Error e -> Error e
                | Ok _ ->
                  Result.map (fun () -> ())
                    (Cloudskulk.Stealth.mirror_file ~guestx ~victim
                       ~name:(Memory.File_image.name image)));
            mutate_in_guest =
              (fun ~name ~salt ->
                match Vmm.Vm.file_offset victim name with
                | None -> Error "no file"
                | Some off ->
                  let ram = Vmm.Vm.ram victim in
                  for i = 0 to 99 do
                    let c = Memory.Address_space.read ram (off + i) in
                    ignore
                      (Memory.Address_space.write ram (off + i)
                         (Memory.Page.Content.mutate c ~salt))
                  done;
                  Ok ());
          }
        in
        match Cloudskulk.Dedup_detector.run env with
        | Ok o ->
          Alcotest.(check bool) "caught" true
            (o.Cloudskulk.Dedup_detector.verdict
            = Cloudskulk.Dedup_detector.Nested_vm_detected)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "co-resident VMs survive the attack untouched" `Quick (fun () ->
        let ctx, _, _, host, registry = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        let bystander =
          Result.get_ok
            (Vmm.Hypervisor.launch host (target_config ~name:"bystander" ~memory_mb:32 ()))
        in
        let c = Memory.Page.Content.of_int 31337 in
        ignore (Memory.Address_space.write (Vmm.Vm.ram bystander) 5 c);
        ignore (install_exn ctx host registry);
        Alcotest.(check bool) "still running" true (Vmm.Vm.state bystander = Vmm.Vm.Running);
        Alcotest.(check bool) "memory intact" true
          (Memory.Page.Content.equal c (Memory.Address_space.read (Vmm.Vm.ram bystander) 5)));
    Alcotest.test_case "trace records the attack's causal chain" `Quick (fun () ->
        let ctx, trace, _, host, registry = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        ignore (install_exn ctx host registry);
        Alcotest.(check bool) "guestx launched" true
          (Sim.Trace.contains trace ~component:"hv:host" ~substring:"launched guestx");
        Alcotest.(check bool) "guest0 killed" true
          (Sim.Trace.contains trace ~component:"hv:host" ~substring:"killed guest0"));
    Alcotest.test_case "admin's monitor view of GuestX mimics the old guest" `Quick (fun () ->
        let ctx, _, _, host, registry = mk_world () in
        let target = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
        let before = Vmm.Monitor.execute_exn target "info qtree" in
        let r = install_exn ctx host registry in
        let victim = r.Cloudskulk.Install.ritm.Cloudskulk.Ritm.victim in
        (* the victim VM (at L2) answers with the same device tree *)
        let after = Vmm.Monitor.execute_exn victim "info qtree" in
        Alcotest.(check string) "same qtree" before after);
  ]

let persistence_tests =
  [
    Alcotest.test_case "CloudSkulk survives a guest reboot (Section VII-A)" `Quick (fun () ->
        (* SubVirt needs a reboot to engage; BluePill dies on one;
           CloudSkulk survives it, because rebooting L2 cannot escape
           GuestX *)
        let ctx, _, _, host, registry = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        let r = install_exn ctx host registry in
        let ritm = r.Cloudskulk.Install.ritm in
        let victim = ritm.Cloudskulk.Ritm.victim in
        (match Vmm.Vm.reboot_guest victim with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Alcotest.(check bool) "still at L2" true
          (Vmm.Level.is_nested (Vmm.Vm.level victim));
        Alcotest.(check bool) "rootkit intact" true (Cloudskulk.Ritm.is_intact ritm);
        (* and the attacker's taps still see fresh traffic *)
        let kl = Cloudskulk.Services.start_keylogger ritm ~ports:[ 22 ] in
        Cloudskulk.Services.victim_send ritm ~dst:(Net.Packet.endpoint "x" 22) "post-reboot";
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        ignore kl);
    Alcotest.test_case "guest reboot wipes memory and processes" `Quick (fun () ->
        let _, _, _, host, _ = mk_world () in
        let vm = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
        let f = Memory.File_image.generate (Sim.Rng.create 1) ~name:"doc" ~pages:4 in
        ignore (Result.get_ok (Vmm.Vm.load_file vm f));
        ignore
          (Vmm.Process_table.spawn (Vmm.Vm.guest_processes vm) ~name:"vim"
             ~cmdline:"vim notes.txt");
        (match Vmm.Vm.reboot_guest vm with Ok () -> () | Error e -> Alcotest.fail e);
        Alcotest.(check (option int)) "file forgotten" None (Vmm.Vm.file_offset vm "doc");
        Alcotest.(check (list string)) "only boot processes" [ "kthreadd"; "sshd"; "systemd" ]
          (List.sort_uniq String.compare
             (List.map
                (fun (p : Vmm.Process_table.proc) -> p.Vmm.Process_table.name)
                (Vmm.Process_table.all (Vmm.Vm.guest_processes vm))));
        let all_zero = ref true in
        let ram = Vmm.Vm.ram vm in
        for i = 0 to Memory.Address_space.pages ram - 1 do
          if not (Memory.Page.Content.is_zero (Memory.Address_space.read ram i)) then
            all_zero := false
        done;
        Alcotest.(check bool) "memory wiped" true !all_zero);
    Alcotest.test_case "rebooting a paused guest is refused" `Quick (fun () ->
        let _, _, _, host, _ = mk_world () in
        let vm = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
        ignore (Vmm.Vm.pause vm);
        Alcotest.(check bool) "refused" true (Result.is_error (Vmm.Vm.reboot_guest vm)));
  ]

let deep_nesting_tests =
  [
    Alcotest.test_case "an L3 rootkit is possible but ever slower" `Quick (fun () ->
        (* nest once more: a RITM inside the RITM *)
        let ctx, _, _, host, _ = mk_world () in
        let l1_cfg =
          Vmm.Qemu_config.with_nested_vmx
            { (Vmm.Qemu_config.default ~name:"l1") with Vmm.Qemu_config.memory_mb = 256 }
            true
        in
        let l1 = Result.get_ok (Vmm.Hypervisor.launch host l1_cfg) in
        let hv1 = Result.get_ok (Vmm.Hypervisor.create_nested ctx ~vm:l1 ~name:"hv1") in
        let l2_cfg =
          Vmm.Qemu_config.with_nested_vmx
            { (Vmm.Qemu_config.default ~name:"l2") with Vmm.Qemu_config.memory_mb = 64 }
            true
        in
        let l2 = Result.get_ok (Vmm.Hypervisor.launch hv1 l2_cfg) in
        let hv2 = Result.get_ok (Vmm.Hypervisor.create_nested ctx ~vm:l2 ~name:"hv2") in
        let l3 =
          Result.get_ok
            (Vmm.Hypervisor.launch hv2
               { (Vmm.Qemu_config.default ~name:"l3") with Vmm.Qemu_config.memory_mb = 8 })
        in
        Alcotest.(check int) "L3" 3 (Vmm.Level.to_int (Vmm.Vm.level l3));
        (* pipe latency explodes quadratically with depth *)
        let pipe = List.assoc "pipe latency" Workload.Lmbench.processes in
        let at l = Vmm.Cost_model.cost_ns ~level:(Vmm.Level.of_int l) pipe in
        Alcotest.(check bool) "L3 >> L2" true (at 3 > 10. *. at 2);
        (* and L3 writes still surface in L1's root RAM *)
        let c = Memory.Page.Content.of_int 3333 in
        ignore (Memory.Address_space.write (Vmm.Vm.ram l3) 0 c);
        let root, _ = Memory.Address_space.resolve (Vmm.Vm.ram l3) 0 in
        Alcotest.(check bool) "rooted in l1 ram" true (root == Vmm.Vm.ram l1));
  ]

let failure_tests =
  [
    Alcotest.test_case "install against a paused target still works" `Quick (fun () ->
        (* migration accepts running or paused sources *)
        let ctx, _, _, host, registry = mk_world () in
        let target = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
        ignore (Vmm.Vm.pause target);
        match Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0" with
        | Ok r ->
          Alcotest.(check bool) "victim running" true
            (Vmm.Vm.state r.Cloudskulk.Install.ritm.Cloudskulk.Ritm.victim = Vmm.Vm.Running)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "install against a stopped target fails without leftovers" `Quick
      (fun () ->
        let ctx, _, _, host, registry = mk_world () in
        let target = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
        Vmm.Vm.stop target;
        Alcotest.(check bool) "fails" true
          (Result.is_error
             (Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0"));
        Alcotest.(check bool) "no guestx left behind" true
          (Vmm.Hypervisor.find_vm host "guestx" = None));
    Alcotest.test_case "double install of the same name fails cleanly" `Quick (fun () ->
        let ctx, _, _, host, registry = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        ignore (install_exn ctx host registry);
        (* the original guest0 is gone; a second install finds no target *)
        Alcotest.(check bool) "fails" true
          (Result.is_error
             (Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0")));
    Alcotest.test_case "host RAM exhaustion surfaces as a launch error" `Quick (fun () ->
        let ctx = Sim.Ctx.create () in
        let uplink = Net.Fabric.Switch.create ctx ~name:"up" ~link:Net.Link.lan_1gbe in
        (* a 1 GB host cannot take two 1 GB guests *)
        let host =
          Vmm.Hypervisor.create_l0 ~ram_gb:1 ctx ~name:"small" ~uplink ~addr:"10.0.0.1"
        in
        ignore
          (Result.get_ok (Vmm.Hypervisor.launch host (Vmm.Qemu_config.default ~name:"a")));
        match Vmm.Hypervisor.launch host (Vmm.Qemu_config.default ~name:"b") with
        | Error e -> Alcotest.(check bool) "mentions memory" true (String.length e > 0)
        | Ok _ -> Alcotest.fail "should fail");
  ]

let () =
  Alcotest.run "integration"
    [
      ("story", story_tests);
      ("persistence", persistence_tests);
      ("deep_nesting", deep_nesting_tests);
      ("failure", failure_tests);
    ]
