(* Fleet throughput measurement: real wall-clock of Fleet.World.run at
   datacenter sizes, sharded vs single-shard, for the standing record
   in BENCH_scan.json. The sharded runs use jobs = 0 (all cores), so
   the recorded speedup is whatever the machine can actually deliver -
   on a single-core container the partition runs inline and the number
   documents pure sharding overhead (~1.0x) rather than a fabricated
   gain; the core count is recorded next to it. *)

type measurement = {
  m_vms : int;
  m_vm_minutes : float;  (** simulated VM-minutes covered by the run *)
  m_events : int;  (** engine events across all hosts *)
  m_wall_s : float;  (** best-of-N host seconds *)
}

let spec ~hosts ~tenants ~minutes =
  {
    Fleet.Spec.default with
    Fleet.Spec.hosts;
    racks = min 64 (max 1 (hosts / 8));
    tenants_per_host = tenants;
    duration = Sim.Time.minutes minutes;
  }

let measure ?(repeats = 2) ~hosts ~tenants ~minutes ~shards ~jobs () =
  let spec = spec ~hosts ~tenants ~minutes in
  let events = ref 0 in
  let best = ref infinity in
  for _ = 1 to repeats do
    let ctx = Sim.Ctx.create ~seed:42 () in
    (* skulklint: allow wall-clock — times the simulator itself (host CPU seconds), not simulated work *)
    let t0 = Sys.time () in
    let r = Fleet.World.run ~jobs ~shards ctx spec in
    (* skulklint: allow wall-clock — closes the host-clock interval opened above *)
    let dt = Sys.time () -. t0 in
    events := Fleet.World.events r;
    if dt < !best then best := dt
  done;
  {
    m_vms = Fleet.Spec.vms spec;
    m_vm_minutes = float_of_int (Fleet.Spec.vms spec) *. minutes;
    m_events = !events;
    m_wall_s = !best;
  }

let events_per_sec m = float_of_int m.m_events /. m.m_wall_s
let ns_per_vm_minute m = m.m_wall_s *. 1e9 /. m.m_vm_minutes
