(* Figs 5 and 6: the detector's per-page write times t0/t1/t2, without
   (Fig 5) and with (Fig 6) a nested VM. The paper plots one point per
   probed page; we print the summary statistics plus a compact rendering
   of the per-page series. *)

let sparkline values =
  let glyphs = [| '_'; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let mx = Array.fold_left Float.max 1e-9 values in
  String.init (Array.length values) (fun i ->
      let v = values.(i) /. mx in
      glyphs.(min 7 (int_of_float (v *. 8.))))

let print_measurement (m : Cloudskulk.Dedup_detector.measurement) =
  Printf.printf
    "  %-3s mean %7.0f ns  stddev %6.0f ns  p50 %7.0f ns  p95 %7.0f ns  merged pages \
     %3.0f%%  |%s|\n"
    m.Cloudskulk.Dedup_detector.label m.summary.Sim.Stats.mean m.summary.Sim.Stats.stddev
    m.summary.Sim.Stats.p50 m.summary.Sim.Stats.p95
    (m.cow_fraction *. 100.)
    (sparkline (Array.sub m.per_page_ns 0 (min 60 (Array.length m.per_page_ns))))

let run_scenario scenario_name scenario expected =
  Bench_util.subsection scenario_name;
  match Cloudskulk.Dedup_detector.run scenario.Cloudskulk.Scenarios.detector_env with
  | Error e -> Printf.printf "  ERROR: %s\n" e
  | Ok o ->
    print_measurement o.Cloudskulk.Dedup_detector.t0;
    print_measurement o.t1;
    print_measurement o.t2;
    Printf.printf "  verdict: %s\n"
      (Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict);
    Printf.printf "  ksm wait per step: %s; whole protocol: %s\n"
      (Sim.Time.to_string o.wait_per_step)
      (Sim.Time.to_string o.elapsed);
    Bench_util.paper_vs_measured ~paper:expected
      ~measured:
        (Printf.sprintf "t1/t0 = %.1fx, t2/t0 = %.1fx"
           (o.t1.summary.Sim.Stats.mean /. o.t0.summary.Sim.Stats.mean)
           (o.t2.summary.Sim.Stats.mean /. o.t0.summary.Sim.Stats.mean))

let fig5 ?(seed = 7) () =
  Bench_util.section "Fig 5: t0, t1, t2 per page - no nested VM (scenario 1)";
  run_scenario "clean host, customer VM at L1"
    (Cloudskulk.Scenarios.clean ~seed ())
    "t1 significantly larger than t2; t2 similar to t0"

let fig6 ?(seed = 7) () =
  Bench_util.section "Fig 6: t0, t1, t2 per page - with a nested VM (scenario 2)";
  run_scenario "CloudSkulk installed, customer at L2 behind the RITM"
    (Cloudskulk.Scenarios.infected ~seed ())
    "no significant difference between t1 and t2; both far above t0"

let run ?(seed = 7) () =
  fig5 ~seed ();
  fig6 ~seed ()
