(* Figs 5 and 6: the detector's per-page write times t0/t1/t2, without
   (Fig 5) and with (Fig 6) a nested VM. The paper plots one point per
   probed page; we print the summary statistics plus a compact rendering
   of the per-page series. *)

let print_measurement (m : Cloudskulk.Dedup_detector.measurement) =
  Bench_util.measurement_line ~label:m.Cloudskulk.Dedup_detector.label ~summary:m.summary
    ~cow_fraction:m.cow_fraction ~per_page_ns:m.per_page_ns ()

let run_scenario scenario_name scenario expected =
  Bench_util.subsection scenario_name;
  match Cloudskulk.Dedup_detector.run scenario.Cloudskulk.Scenarios.detector_env with
  | Error e -> Printf.printf "  ERROR: %s\n" e
  | Ok o ->
    print_measurement o.Cloudskulk.Dedup_detector.t0;
    print_measurement o.t1;
    print_measurement o.t2;
    Printf.printf "  verdict: %s\n"
      (Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict);
    Printf.printf "  ksm wait per step: %s; whole protocol: %s\n"
      (Sim.Time.to_string o.wait_per_step)
      (Sim.Time.to_string o.elapsed);
    Bench_util.paper_vs_measured ~paper:expected
      ~measured:
        (Printf.sprintf "t1/t0 = %.1fx, t2/t0 = %.1fx"
           (o.t1.summary.Sim.Stats.mean /. o.t0.summary.Sim.Stats.mean)
           (o.t2.summary.Sim.Stats.mean /. o.t0.summary.Sim.Stats.mean))

let fig5 ctx =
  Bench_util.section "Fig 5: t0, t1, t2 per page - no nested VM (scenario 1)";
  run_scenario "clean host, customer VM at L1"
    (Cloudskulk.Scenarios.clean ctx)
    "t1 significantly larger than t2; t2 similar to t0"

let fig6 ctx =
  Bench_util.section "Fig 6: t0, t1, t2 per page - with a nested VM (scenario 2)";
  run_scenario "CloudSkulk installed, customer at L2 behind the RITM"
    (Cloudskulk.Scenarios.infected ctx)
    "no significant difference between t1 and t2; both far above t0"

let specs =
  [
    Harness.Experiment.make ~id:"fig5" ~doc:"Fig 5: t0/t1/t2, no nested VM" ~default_seed:7
      (fun { Harness.Experiment.ctx; _ } -> fig5 ctx);
    Harness.Experiment.make ~id:"fig6" ~doc:"Fig 6: t0/t1/t2, nested VM present"
      ~default_seed:7 (fun { Harness.Experiment.ctx; _ } -> fig6 ctx);
  ]
