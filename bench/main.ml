(* Benchmark harness: regenerates every table and figure of the
   CloudSkulk paper (plus the ablations in DESIGN.md) from the
   simulator. Run with no arguments for everything, or [--only <id>]
   for one experiment. *)

let experiments =
  [
    ( "table1",
      "Table I: VM escape CVEs 2015-2020",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_table1.run () );
    ( "fig2",
      "Fig 2: kernel compile timing L0/L1/L2",
      fun ~runs ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_fig2.run ~runs () );
    ( "fig3",
      "Fig 3: Netperf throughput L0/L1/L2",
      fun ~runs ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_fig3.run ~runs () );
    ( "fig4",
      "Fig 4: live migration timing vs workload",
      fun ~runs ~jobs ~faults:_ ~telemetry -> Exp_fig4.run ~runs ~jobs ?telemetry () );
    ( "table2",
      "Table II: lmbench arithmetic",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_lmbench.table2 () );
    ( "table3",
      "Table III: lmbench processes",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_lmbench.table3 () );
    ( "table4",
      "Table IV: lmbench file system",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_lmbench.table4 () );
    ("fig5", "Fig 5: t0/t1/t2, no nested VM", fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_fig56.fig5 ());
    ( "fig6",
      "Fig 6: t0/t1/t2, nested VM present",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_fig56.fig6 () );
    ( "install",
      "Section V-A: installation walkthrough",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_install.run () );
    ( "detect",
      "Section VI-C: detection accuracy (honours --faults)",
      fun ~runs ~jobs ~faults ~telemetry -> Exp_detect.run ~trials:runs ~jobs ~faults ?telemetry () );
    ( "abl-ksm",
      "Ablation: ksmd pacing vs detector wait",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_ablations.abl_ksm () );
    ( "abl-pages",
      "Ablation: probe size",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_ablations.abl_pages () );
    ( "abl-sync",
      "Ablation: attacker sync evasion cost",
      fun ~runs:_ ~jobs ~faults:_ ~telemetry:_ -> Exp_ablations.abl_sync ~jobs () );
    ( "abl-postcopy",
      "Ablation: pre-copy vs post-copy install",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_ablations.abl_postcopy () );
    ( "abl-density",
      "Ablation: KSM savings across same-image tenants",
      fun ~runs:_ ~jobs ~faults:_ ~telemetry:_ -> Exp_ablations.abl_density ~jobs () );
    ( "abl-autoconverge",
      "Ablation: auto-converge stealth trade-off",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_ablations.abl_autoconverge () );
    ( "abl-l2",
      "Extension: guest-side timing detection arms race",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_extensions.abl_l2 () );
    ( "audit",
      "Extension: host behavioral auditor",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_extensions.audit () );
    ( "abl-covert",
      "Extension: KSM covert channel bandwidth",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Exp_extensions.abl_covert () );
    ( "bechamel",
      "Bechamel simulator micro-benchmarks",
      fun ~runs:_ ~jobs:_ ~faults:_ ~telemetry:_ -> Bechamel_suite.run () );
  ]

let write_out path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_experiments ~only ~runs ~jobs ~faults ~metrics_out ~trace_out ~list_only =
  if list_only then begin
    List.iter (fun (id, descr, _) -> Printf.printf "%-14s %s\n" id descr) experiments;
    `Ok ()
  end
  else
    match Sim.Fault.profile_of_string faults with
    | Error e -> `Error (false, e)
    | Ok faults -> (
      let telemetry =
        if metrics_out <> None || trace_out <> None then Some (Sim.Telemetry.create ())
        else None
      in
      let export () =
        match telemetry with
        | None -> ()
        | Some t ->
          Option.iter (fun p -> write_out p (Sim.Telemetry.prometheus_string t)) metrics_out;
          Option.iter (fun p -> write_out p (Sim.Telemetry.jsonl_string t)) trace_out
      in
      match only with
      | Some id -> (
        match List.find_opt (fun (eid, _, _) -> String.equal eid id) experiments with
        | Some (_, _, f) ->
          f ~runs ~jobs ~faults ~telemetry;
          export ();
          `Ok ()
        | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; use --list to see the available ids" id ))
      | None ->
        Printf.printf "CloudSkulk reproduction: regenerating every table and figure\n";
        Printf.printf "(simulated substrate; see DESIGN.md for the calibration story)\n";
        List.iter (fun (_, _, f) -> f ~runs ~jobs ~faults ~telemetry) experiments;
        export ();
        `Ok ())

open Cmdliner

let only =
  let doc = "Run a single experiment (e.g. fig4, table2, abl-pages)." in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)

let runs =
  let doc = "Repetitions per data point (the paper uses 5)." in
  Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Worker domains for experiments with independent trials (detect, fig4, abl-sync, \
     abl-density). 1 = sequential; 0 = all available cores. Output is byte-identical \
     whatever the value: trials are seeded independently and results are rendered in \
     trial order."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let faults =
  let doc =
    "Channel fault profile injected into migrations (experiments that honour it: detect). \
     One of none, lossy, degraded, flaky. Fault schedules are seeded per trial, so output \
     is still byte-identical across --jobs levels; 'none' reproduces the fault-free runs \
     exactly."
  in
  Arg.(value & opt string "none" & info [ "faults" ] ~docv:"PROFILE" ~doc)

let metrics_out =
  let doc =
    "Write Prometheus-style telemetry (counters, gauges, histograms from every simulated \
     layer) to $(docv) when the run finishes. Off by default: without this flag (and \
     --trace-out) no telemetry is collected and output is byte-identical to an \
     uninstrumented build."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out =
  let doc = "Write the JSONL span trace (sim-time intervals with structured fields) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let list_only =
  let doc = "List experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let cmd =
  let doc = "Regenerate the CloudSkulk paper's tables and figures" in
  let info = Cmd.info "cloudskulk-bench" ~doc in
  Cmd.v info
    Term.(
      ret
        (const (fun only runs jobs faults metrics_out trace_out list_only ->
             run_experiments ~only ~runs ~jobs ~faults ~metrics_out ~trace_out ~list_only)
        $ only $ runs $ jobs $ faults $ metrics_out $ trace_out $ list_only))

let () = exit (Cmd.eval cmd)
