(* Benchmark shell: every table, figure and ablation is an
   {!Harness.Experiment.t} spec registered here in presentation order;
   flag parsing, context construction and telemetry export all live in
   {!Harness.Registry}. Run with no arguments for everything, or
   [--only <id>] for one experiment. *)

let () =
  List.iter Harness.Registry.register
    ([ Exp_table1.spec; Exp_fig2.spec; Exp_fig3.spec; Exp_fig4.spec ]
    @ Exp_lmbench.specs @ Exp_fig56.specs
    @ [ Exp_install.spec; Exp_detect.spec; Exp_slo.spec ]
    @ Exp_ablations.specs @ Exp_extensions.specs
    @ [ Exp_fuzz.spec; Exp_fleet.spec; Bechamel_suite.spec ]);
  exit
    (Harness.Registry.main ~name:"cloudskulk-bench"
       ~doc:"Regenerate the CloudSkulk paper's tables and figures"
       ~prologue:
         [
           "CloudSkulk reproduction: regenerating every table and figure";
           "(simulated substrate; see DESIGN.md for the calibration story)";
         ]
       ())
