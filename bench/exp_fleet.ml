(* Datacenter fleet: time-to-detection and scan cost vs fleet size on
   the partitioned event engine. Each size is an independent
   Fleet.World run (racks of hosts behind the fabric, Poisson churn,
   multi-tenant KSM pressure, CloudSkulk infections at
   Spec.infection_rate); --shards/--jobs pick the partition, and the
   output is byte-identical whatever they are - that invariance is the
   whole point of Sim.Parallel.run_sharded and is what CI diffs.

   The ladder scales with --trials so smoke runs stay cheap:
   --trials 1 runs only the 16-VM fleet, the default 5 adds the 100-
   and 1000-VM fleets, and --trials 10+ adds the 10k-VM fleet (about
   half a minute of wall clock; the bechamel suite and BENCH_scan.json
   carry its throughput numbers). *)

let size ~label ~hosts ~tenants ~minutes =
  ( label,
    {
      Fleet.Spec.default with
      Fleet.Spec.hosts;
      racks = min 64 (max 1 (hosts / 8));
      tenants_per_host = tenants;
      duration = Sim.Time.minutes minutes;
    } )

let sizes ~trials =
  List.concat
    [
      [ size ~label:"small" ~hosts:4 ~tenants:3 ~minutes:60. ];
      (if trials >= 2 then [ size ~label:"100vm" ~hosts:25 ~tenants:3 ~minutes:60. ]
       else []);
      (if trials >= 5 then [ size ~label:"1kvm" ~hosts:125 ~tenants:7 ~minutes:45. ]
       else []);
      (if trials >= 10 then [ size ~label:"10kvm" ~hosts:1250 ~tenants:7 ~minutes:15. ]
       else []);
    ]

let ttd_quantile (r : Fleet.World.result) q =
  match r.Fleet.World.detections with
  | [] -> "-"
  | ds ->
    let st = Sim.Stats.create () in
    List.iter
      (fun d ->
        Sim.Stats.add st
          (Int64.to_float (Sim.Time.to_ns d.Cloudskulk.Fleet_soc.det_ttd)))
      ds;
    Printf.sprintf "%.1f min" (Sim.Stats.percentile st q /. 60e9)

let run { Harness.Experiment.trials; jobs; shards; ctx } =
  Bench_util.section "Fleet: time-to-detection and scan cost vs fleet size";
  let results =
    List.map
      (fun (label, spec) -> (label, spec, Fleet.World.run ~jobs ~shards ctx spec))
      (sizes ~trials)
  in
  let rows =
    List.map
      (fun (label, spec, r) ->
        let vms = Fleet.Spec.vms spec in
        let vm_minutes =
          float_of_int vms *. (Sim.Time.to_s spec.Fleet.Spec.duration /. 60.)
        in
        let probes =
          Array.fold_left
            (fun acc h -> acc + h.Fleet.Host.r_probes)
            0 r.Fleet.World.reports
        in
        [
          label;
          string_of_int spec.Fleet.Spec.hosts;
          string_of_int vms;
          Printf.sprintf "%d/%d"
            (Fleet.World.detected_hosts r)
            (Fleet.World.infected_hosts r);
          ttd_quantile r 50.;
          ttd_quantile r 99.;
          string_of_int probes;
          Printf.sprintf "%.1f" (float_of_int probes /. float_of_int (max 1 vms));
          string_of_int (Fleet.World.events r);
          Printf.sprintf "%.0f" (float_of_int (Fleet.World.events r) /. vm_minutes);
        ])
      results
  in
  Bench_util.table
    ~header:
      [
        "fleet"; "hosts"; "vms"; "detected"; "ttd p50"; "ttd p99"; "probes";
        "probes/vm"; "events"; "events/vm-min";
      ]
    ~rows;
  (match results with
  | (label, _, r) :: _ ->
    Bench_util.subsection (Printf.sprintf "fleet %s, host by host" label);
    print_string (Fleet.World.render r)
  | [] -> ());
  List.iter
    (fun (label, _, r) ->
      match Fleet.World.conservation r with
      | Ok () -> ()
      | Error e -> Printf.printf "  CONSERVATION VIOLATED (%s): %s\n" label e)
    results;
  Bench_util.note
    "scan cost stays per-host (probes/vm flat, events/vm-min bounded) while the SOC's \
     audit rotation covers the fleet, so time-to-detection is governed by the dedup \
     rotation window, not the fleet size; every number above is byte-identical for any \
     --shards x --jobs partition"

let spec =
  Harness.Experiment.make ~default_seed:42 ~id:"fleet"
    ~doc:"fleet: sharded datacenter worlds, detection latency vs scale" run
