(* Experiments for the extension modules: the L2-side timing arms race
   (Section VI-A), the host-side behavioral auditor, and the KSM covert
   channel (the paper's ref [41] mechanism on the same substrate). *)

let target_config () =
  Vmm.Qemu_config.with_hostfwd (Vmm.Qemu_config.default ~name:"guest0") [ (2222, 22) ]

let mk_world ?ksm_config ctx =
  let ctx = Sim.Ctx.fork ctx in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host =
    Vmm.Hypervisor.create_l0 ?ksm_config ctx ~name:"host" ~uplink ~addr:"192.168.1.100"
  in
  (ctx, host, Migration.Registry.create ())

let infected_victim ctx =
  let ctx, host, registry = mk_world ctx in
  ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
  match Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0" with
  | Ok r -> (ctx, host, r.Cloudskulk.Install.ritm)
  | Error e -> failwith e

(* abl-l2: guest-side timing detection vs the attacker's clock tricks. *)
let abl_l2 ctx =
  Bench_util.section "abl-l2: detection from inside the guest, and its manipulation (VI-A)";
  let open Cloudskulk.L2_timing_detector in
  let describe label vm =
    let r = measure vm in
    let pipe = List.hd r.observations in
    [
      label;
      Printf.sprintf "%.1fx" pipe.ratio;
      verdict_to_string r.naive_verdict;
      verdict_to_string r.consistency_verdict;
      Printf.sprintf "%.1fx" r.max_ratio_spread;
    ]
  in
  let seed = Sim.Ctx.seed ctx in
  let _, host_clean, _ = mk_world ctx in
  let honest = Result.get_ok (Vmm.Hypervisor.launch host_clean (target_config ())) in
  let _, _, ritm1 = infected_victim ctx in
  let _, _, ritm2 = infected_victim (Sim.Ctx.with_seed ctx (seed + 1)) in
  hide_reference_op ritm2.Cloudskulk.Ritm.victim;
  let _, _, ritm3 = infected_victim (Sim.Ctx.with_seed ctx (seed + 2)) in
  spoof_results ritm3.Cloudskulk.Ritm.victim;
  let rows =
    [
      describe "honest L1 guest" honest;
      describe "nested victim, no evasion" ritm1.Cloudskulk.Ritm.victim;
      describe "nested, clock scaled for pipe" ritm2.Cloudskulk.Ritm.victim;
      describe "nested, results spoofed" ritm3.Cloudskulk.Ritm.victim;
    ]
  in
  Cloudskulk.L2_timing_detector.stop_spoofing ritm3.Cloudskulk.Ritm.victim;
  Bench_util.table
    ~header:[ "guest"; "pipe ratio"; "naive verdict"; "multi-op verdict"; "ratio spread" ]
    ~rows;
  Bench_util.paper_vs_measured
    ~paper:"Section VI-A: L2 measurements can be manipulated from L1 - detect from L0 instead"
    ~measured:"clock scaling beats the naive check; full spoofing beats both; L0 dedup unaffected"

(* audit: the behavioral auditor across scenarios. *)
let audit ctx =
  Bench_util.section "audit: host-side behavioral footprints of an installation";
  let open Cloudskulk.Install_auditor in
  let summarize host =
    let findings = Cloudskulk.Install_auditor.audit host in
    let count sev = List.length (List.filter (fun f -> f.severity = sev) findings) in
    ( Printf.sprintf "%d/%d/%d" (count Info) (count Suspicious) (count Alarm),
      string_of_bool (is_alarming findings) )
  in
  let _, host_clean, _ = mk_world ctx in
  ignore (Result.get_ok (Vmm.Hypervisor.launch host_clean (target_config ())));
  let clean_counts, clean_alarm = summarize host_clean in
  let busy_spawn host =
    ignore
      (Vmm.Process_table.spawn (Vmm.Hypervisor.processes host) ~name:"dnf"
         ~cmdline:"/usr/bin/dnf makecache")
  in
  let cctx, host_vtx, registry = mk_world ctx in
  ignore (Result.get_ok (Vmm.Hypervisor.launch host_vtx (target_config ())));
  busy_spawn host_vtx;
  ignore (Result.get_ok (Cloudskulk.Install.run cctx ~host:host_vtx ~registry ~target_name:"guest0"));
  let vtx_counts, vtx_alarm = summarize host_vtx in
  let cctx, host_soft, registry = mk_world ctx in
  ignore (Result.get_ok (Vmm.Hypervisor.launch host_soft (target_config ())));
  busy_spawn host_soft;
  let config =
    { (Cloudskulk.Install.default_config ~target_name:"guest0") with
      Cloudskulk.Install.use_vtx = false }
  in
  ignore
    (Result.get_ok
       (Cloudskulk.Install.run ~config cctx ~host:host_soft ~registry ~target_name:"guest0"));
  let soft_counts, soft_alarm = summarize host_soft in
  Bench_util.table
    ~header:[ "scenario"; "findings (info/susp/alarm)"; "alarming" ]
    ~rows:
      [
        [ "clean host"; clean_counts; clean_alarm ];
        [ "post-install (VT-x)"; vtx_counts; vtx_alarm ];
        [ "post-install (no VT-x)"; soft_counts; soft_alarm ];
      ];
  Bench_util.note
    "behavioral footprints (PID inversion, public port into a VMX guest, VMCS pages) \
     complement the dedup detector: cheap to sweep, harder to attribute"

(* abl-covert: channel goodput vs ksmd pacing. *)
let abl_covert ctx =
  Bench_util.section "abl-covert: KSM covert channel bandwidth (the paper's ref [41])";
  let configs =
    [
      ("100 pages / 20 ms (default)", Memory.Ksm.default_config);
      ("400 pages / 20 ms", { Memory.Ksm.pages_to_scan = 400; sleep = Sim.Time.ms 20.; incremental = false });
      ("4096 pages / 1 ms (aggressive)", Memory.Ksm.fast_config);
    ]
  in
  let payload = Cloudskulk.Covert_channel.string_to_bits "covert!" in
  let rows =
    List.map
      (fun (name, ksm_config) ->
        let _, host, _ = mk_world ~ksm_config ctx in
        let sender =
          Result.get_ok
            (Vmm.Hypervisor.launch host
               { (Vmm.Qemu_config.default ~name:"sender") with Vmm.Qemu_config.memory_mb = 256 })
        in
        let receiver =
          Result.get_ok
            (Vmm.Hypervisor.launch host
               { (Vmm.Qemu_config.default ~name:"receiver") with
                 Vmm.Qemu_config.memory_mb = 256;
                 monitor_port = 5556 })
        in
        match Cloudskulk.Covert_channel.transmit ~host ~sender ~receiver payload with
        | Ok t ->
          [
            name;
            Printf.sprintf "%d bits" (List.length payload);
            string_of_int t.Cloudskulk.Covert_channel.bit_errors;
            Printf.sprintf "%.2f bit/s" t.Cloudskulk.Covert_channel.bandwidth_bits_per_s;
            Sim.Time.to_string t.Cloudskulk.Covert_channel.elapsed;
          ]
        | Error e -> [ name; "-"; "-"; "-"; "error: " ^ e ])
      configs
  in
  Bench_util.table
    ~header:[ "ksmd pacing"; "payload"; "bit errors"; "goodput"; "frame time" ]
    ~rows;
  Bench_util.note
    "the channel rides the SAME merge+CoW mechanics the detector uses; its bandwidth is \
     gated by ksmd's full-pass time, exactly like the detector's wait"

let specs =
  let open Harness.Experiment in
  [
    make ~id:"abl-l2" ~doc:"Extension: guest-side timing detection arms race" ~default_seed:9
      (fun { ctx; _ } -> abl_l2 ctx);
    make ~id:"audit" ~doc:"Extension: host behavioral auditor" ~default_seed:9
      (fun { ctx; _ } -> audit ctx);
    make ~id:"abl-covert" ~doc:"Extension: KSM covert channel bandwidth" ~default_seed:9
      (fun { ctx; _ } -> abl_covert ctx);
  ]
