(* Fig 4: live migration end-to-end time, L0-L0 vs L0-L1, under idle,
   Filebench (I/O) and kernel-compile (CPU/memory) guest workloads. The
   L0-L1 series is CloudSkulk's installation path; its end-to-end time
   is the rootkit's installation time. *)

type workload = Idle | Filebench | Compile

let workload_name = function Idle -> "idle" | Filebench -> "filebench" | Compile -> "kernel compile"

let spec_of = function
  | Idle -> Workload.Idle.background ()
  | Filebench -> Workload.Filebench.background ()
  | Compile -> Workload.Kernel_compile.background ()

let migrate ~nested ~workload ctx =
  let mp = Vmm.Layers.migration_pair ~nested_dest:nested ctx in
  let ctx = mp.Vmm.Layers.mp_ctx in
  let engine = Sim.Ctx.engine ctx in
  let source = mp.Vmm.Layers.mp_source in
  let wenv =
    Workload.Exec_env.make ~vm:source ~ctx ~level:(Vmm.Vm.level source)
      ~ram:(Vmm.Vm.ram source)
      ~rng:(Sim.Ctx.fork_rng ctx)
      ()
  in
  let handle = Workload.Background.start wenv (spec_of workload) in
  (* warm-up so the workload's dirtying is in steady state, as a real
     target VM would be *)
  ignore (Sim.Engine.run_for engine (Sim.Time.s 2.));
  let result =
    (* fault-blind by design: Fig 4 reproduces the paper's fault-free
       timing, so the context's profile is not wired into the driver *)
    match Migration.Precopy.migrate ctx ~source ~dest:mp.Vmm.Layers.mp_dest () with
    | Ok o -> Migration.Outcome.stats_exn o
    | Error e -> failwith ("fig4 migration: " ^ e)
  in
  Workload.Background.stop handle;
  result

let run { Harness.Experiment.trials = runs; jobs; shards = _; ctx } =
  Bench_util.section
    "Fig 4: live migration end-to-end timing vs workload (L0-L0 and L0-L1)";
  let workloads = [ Idle; Filebench; Compile ] in
  (* Every (workload, nesting, seed) migration is an independent trial on
     its own engine: fan the full cross product out and regroup, keeping
     the same seeds (root..root+runs-1) per series as the sequential
     loops used. *)
  let root = Sim.Ctx.seed ctx in
  let trials =
    Array.of_list
      (List.concat_map
         (fun wl ->
           List.concat_map
             (fun nested -> List.init runs (fun k -> (wl, nested, root + k)))
             [ false; true ])
         workloads)
  in
  let times =
    Array.of_list
      (Sim.Parallel.map_ctx ~jobs
         ~seed_of:(fun i ->
           (* skulkscope: allow escape-capture — trials is a read-only descriptor array; each worker reads only its own index *)
           let _, _, seed = trials.(i) in
           seed)
         ~ctx ~trials:(Array.length trials)
         (fun i cctx ->
           (* skulkscope: allow escape-capture — trials is a read-only descriptor array; each worker reads only its own index *)
           let wl, nested, _ = trials.(i) in
           Sim.Time.to_s (migrate ~nested ~workload:wl cctx).Migration.Precopy.total_time))
  in
  let series w nested_idx =
    Bench_util.summary_of_list
      (List.init runs (fun k -> times.((w * 2 * runs) + (nested_idx * runs) + k)))
  in
  let rows =
    List.mapi
      (fun w wl ->
        let flat = series w 0 in
        let nested = series w 1 in
        [
          workload_name wl;
          Bench_util.fmt_s flat.Sim.Stats.mean;
          Bench_util.fmt_rsd flat;
          Bench_util.fmt_s nested.Sim.Stats.mean;
          Bench_util.fmt_rsd nested;
          Bench_util.pct_label flat.Sim.Stats.mean nested.Sim.Stats.mean;
        ])
      workloads
  in
  Bench_util.table
    ~header:[ "guest workload"; "L0-L0"; "rsd"; "L0-L1 (CloudSkulk)"; "rsd"; "L0-L0 -> L0-L1" ]
    ~rows;
  Bench_util.paper_vs_measured
    ~paper:"L0-L1 end-to-end: ~26 s idle, ~29 s I/O (Filebench), ~820 s kernel compile"
    ~measured:
      (String.concat ", "
         (List.map (fun row -> List.nth row 0 ^ " " ^ List.nth row 3) rows));
  Bench_util.note
    "install time = ceil(L0-L1 end-to-end); the compile case does not converge and is \
     capped at %d pre-copy rounds"
    Migration.Precopy.default_config.Migration.Precopy.max_rounds

let spec = Harness.Experiment.make ~id:"fig4" ~doc:"Fig 4: live migration timing vs workload" run
