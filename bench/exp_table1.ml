(* Table I: VM-escape CVEs reported 2015-2020, per hypervisor. *)

let run () =
  Bench_util.section "Table I: VM escape CVE vulnerabilities, 2015-2020";
  print_string (Cloudskulk.Cve_data.render_table ());
  Bench_util.paper_vs_measured
    ~paper:"totals 29 / 15 / 15 / 14 / 23 (96 CVEs)"
    ~measured:
      (Printf.sprintf "totals %d / %d / %d / %d / %d (%d CVEs)"
         (Cloudskulk.Cve_data.total Cloudskulk.Cve_data.Vmware)
         (Cloudskulk.Cve_data.total Cloudskulk.Cve_data.Virtualbox)
         (Cloudskulk.Cve_data.total Cloudskulk.Cve_data.Xen)
         (Cloudskulk.Cve_data.total Cloudskulk.Cve_data.Hyperv)
         (Cloudskulk.Cve_data.total Cloudskulk.Cve_data.Kvm_qemu)
         Cloudskulk.Cve_data.grand_total)

let spec =
  Harness.Experiment.make ~id:"table1" ~doc:"Table I: VM escape CVEs 2015-2020" (fun _ ->
      run ())
