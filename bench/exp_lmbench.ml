(* Tables II, III, IV: lmbench microbenchmarks measured in each of the
   three execution environments. Each measurement times a batch of
   operations on the simulated clock, with per-run noise, exactly the
   way lmbench reports averages. *)

let env_of_level ctx level =
  let topo = Vmm.Layers.of_level ctx level in
  Workload.Exec_env.of_layers ~noise_rsd:0.01 topo

let levels = [ Vmm.Level.l0; Vmm.Level.l1; Vmm.Level.l2 ]

let measure_row ctx op =
  List.map
    (fun level ->
      let env = env_of_level ctx level in
      Workload.Lmbench.measure ~iterations:1000 env op)
    levels

let table2 ctx =
  Bench_util.section "Table II: lmbench arithmetic operations (times in ns)";
  let rows =
    List.map
      (fun (name, op) ->
        name :: List.map (fun ns -> Printf.sprintf "%.2f" ns) (measure_row ctx op))
      Workload.Lmbench.arithmetic
  in
  Bench_util.table ~header:[ "operation"; "L0"; "L1"; "L2" ] ~rows;
  Bench_util.paper_vs_measured
    ~paper:"virtualization has negligible effect on arithmetic (L2 within ~3%)"
    ~measured:"same shape: L0 = L1, L2 ~ +3% (cache/TLB derate)"

let table3 ctx =
  Bench_util.section "Table III: lmbench process operations (times in us)";
  let rows =
    List.map
      (fun (name, op) ->
        name
        :: List.map (fun ns -> Printf.sprintf "%.2f" (ns /. 1000.)) (measure_row ctx op))
      Workload.Lmbench.processes
  in
  Bench_util.table ~header:[ "operation"; "L0"; "L1"; "L2" ] ~rows;
  Bench_util.paper_vs_measured
    ~paper:"pipe 3.49/6.75/65.49 us; fork+exit 74.6/73.65/242.19 us (traps into L0 [38])"
    ~measured:"anchored: see rows above; nested exits dominate the L2 column"

let table4 ctx =
  Bench_util.section
    "Table IV: lmbench file system latency (creations/deletions per second)";
  let rate ns = Printf.sprintf "%.0f" (Workload.Lmbench.ops_per_second ~ns_per_op:ns) in
  let rows =
    List.concat_map
      (fun (row : Workload.Lmbench.fs_row) ->
        let creates = measure_row ctx row.Workload.Lmbench.create in
        let deletes = measure_row ctx row.Workload.Lmbench.delete in
        [
          (Printf.sprintf "create %dK" row.Workload.Lmbench.size_kb :: List.map rate creates);
          (Printf.sprintf "delete %dK" row.Workload.Lmbench.size_kb :: List.map rate deletes);
        ])
      Workload.Lmbench.fs
  in
  Bench_util.table ~header:[ "operation"; "L0"; "L1"; "L2" ] ~rows;
  Bench_util.paper_vs_measured
    ~paper:"L1/L2 track L0 except create-0K collapsing to 2,430/s at L2"
    ~measured:"same shape, including the create-0K collapse"

let specs =
  [
    Harness.Experiment.make ~id:"table2" ~doc:"Table II: lmbench arithmetic"
      (fun { Harness.Experiment.ctx; _ } -> table2 ctx);
    Harness.Experiment.make ~id:"table3" ~doc:"Table III: lmbench processes"
      (fun { Harness.Experiment.ctx; _ } -> table3 ctx);
    Harness.Experiment.make ~id:"table4" ~doc:"Table IV: lmbench file system"
      (fun { Harness.Experiment.ctx; _ } -> table4 ctx);
  ]
