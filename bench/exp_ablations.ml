(* Ablations beyond the paper's figures, probing the design choices
   DESIGN.md calls out. *)

(* abl-ksm: how does ksmd's pacing trade off against how long the
   detector must wait before trusting merge state? *)
let abl_ksm ctx =
  Bench_util.section "abl-ksm: detector wait vs ksmd scan rate";
  let configs =
    [
      ("25 pages / 20 ms", { Memory.Ksm.pages_to_scan = 25; sleep = Sim.Time.ms 20.; incremental = false });
      ("100 pages / 20 ms (Linux default)", Memory.Ksm.default_config);
      ("400 pages / 20 ms", { Memory.Ksm.pages_to_scan = 400; sleep = Sim.Time.ms 20.; incremental = false });
      ("1600 pages / 20 ms", { Memory.Ksm.pages_to_scan = 1600; sleep = Sim.Time.ms 20.; incremental = false });
    ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        let sc = Cloudskulk.Scenarios.infected ~ksm_config:config ctx in
        match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
        | Ok o ->
          [
            name;
            Sim.Time.to_string o.Cloudskulk.Dedup_detector.wait_per_step;
            Sim.Time.to_string o.Cloudskulk.Dedup_detector.elapsed;
            Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict;
          ]
        | Error e -> [ name; "-"; "-"; "error: " ^ e ])
      configs
  in
  Bench_util.table ~header:[ "ksmd pacing"; "wait/step"; "whole protocol"; "verdict" ] ~rows;
  Bench_util.note
    "slower ksmd stretches the protocol linearly but never changes the verdict: the \
     detector keys on merge state, not on absolute timing"

(* abl-pages: the Section VI-D claim that one or a few pages suffice. *)
let abl_pages ctx =
  Bench_util.section "abl-pages: detector confidence vs probe size (Section VI-D)";
  let sizes = [ 1; 2; 4; 10; 25; 100 ] in
  let rows =
    List.map
      (fun file_pages ->
        let config =
          { Cloudskulk.Dedup_detector.default_config with Cloudskulk.Dedup_detector.file_pages }
        in
        let clean = Cloudskulk.Scenarios.clean ctx in
        let infected = Cloudskulk.Scenarios.infected ctx in
        let verdict sc =
          match Cloudskulk.Dedup_detector.run ~config sc.Cloudskulk.Scenarios.detector_env with
          | Ok o -> o
          | Error e -> failwith e
        in
        let oc = verdict clean and oi = verdict infected in
        let sep (o : Cloudskulk.Dedup_detector.outcome) =
          o.Cloudskulk.Dedup_detector.t1.summary.Sim.Stats.mean
          /. o.Cloudskulk.Dedup_detector.t0.summary.Sim.Stats.mean
        in
        [
          string_of_int file_pages;
          (if oc.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.No_nested_vm
           then "correct"
           else "WRONG");
          (if
             oi.Cloudskulk.Dedup_detector.verdict
             = Cloudskulk.Dedup_detector.Nested_vm_detected
           then "correct"
           else "WRONG");
          Printf.sprintf "%.1fx" (sep oi);
        ])
      sizes
  in
  Bench_util.table
    ~header:[ "probe pages"; "clean verdict"; "infected verdict"; "t1/t0 separation" ]
    ~rows;
  Bench_util.note "even a single unique page separates merged from private writes"

(* abl-sync: price the Section VI-D evasion - the attacker mirroring the
   victim's page changes into L1 in real time. *)
let abl_sync ~jobs ctx =
  Bench_util.section "abl-sync: cost of the attacker synchronising L2 changes into L1";
  (* per-page sync cost at the attacker's L1: intercept the L2 write
     (one nested exit) plus one page copy *)
  let intercept =
    Vmm.Cost_model.op ~name:"write-intercept" ~cpu:(Sim.Time.us 1.0) ~sw_exits:1. ()
  in
  let per_page_ns = Vmm.Cost_model.cost_ns ~level:Vmm.Level.l2 intercept in
  let dirty_rates = [ ("idle guest", 2.); ("filebench", 2000.); ("kernel compile", 10_150.) ] in
  let rows =
    List.map
      (fun (name, rate) ->
        let overhead = rate *. per_page_ns /. 1e9 in
        [
          name;
          Printf.sprintf "%.0f pages/s" rate;
          Printf.sprintf "%.1f us/page" (per_page_ns /. 1000.);
          Printf.sprintf "%.1f%% of a core" (overhead *. 100.);
        ])
      dirty_rates
  in
  Bench_util.table
    ~header:[ "victim workload"; "dirty rate"; "sync cost"; "continuous attacker CPU" ]
    ~rows;
  (* and mechanically verify the evasion works when paid for, against the
     unsynchronised baseline; the two scenarios are independent trials
     replaying the same seed *)
  let verdicts =
    (* skulkscope: allow rng-escape — seed_of only reads the immutable seed field: both trials deliberately replay the same seed *)
    Sim.Parallel.map_ctx ~jobs ~seed_of:(fun _ -> Sim.Ctx.seed ctx) ~ctx ~trials:2
      (fun i cctx ->
        let sc = Cloudskulk.Scenarios.infected ~attacker_syncs_changes:(i = 0) cctx in
        match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
        | Ok o ->
          Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict
        | Error e -> "error: " ^ e)
  in
  Printf.printf "\n  with full synchronisation the detector reads: %s\n" (List.nth verdicts 0);
  Printf.printf "  without synchronisation it reads: %s\n" (List.nth verdicts 1);
  Bench_util.note
    "tracking ALL guest pages (262,144 for 1 GB) to know which to sync requires write \
     protection on every page - the paper argues this cost, plus the L1 code changes it \
     needs, makes the evasion unrealistic"

(* abl-density: why clouds run KSM at all - the memory the deduplication
   saves across same-image tenants (paper refs [39], [40]). This is the
   root cause that makes both the detection and the covert channel
   possible. *)
let abl_density ~jobs ctx =
  Bench_util.section "abl-density: KSM memory savings across same-image tenants";
  (* The old incremental loop grew one host tenant by tenant; here each
     tenant count is an independent trial that replays the same launch
     prefix on its own engine, so the rows match the incremental run
     exactly and the counts fan out across cores. *)
  let tenant_counts = 6 in
  let trial cctx n =
    let uplink = Net.Fabric.Switch.create cctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
    let host =
      Vmm.Hypervisor.create_l0 ~ksm_config:Memory.Ksm.fast_config cctx ~name:"host" ~uplink
        ~addr:"192.168.1.100"
    in
    let engine = Sim.Ctx.engine cctx in
    let ksm = Option.get (Vmm.Hypervisor.ksm host) in
    (* every tenant boots the same distro: model its resident footprint as
       a shared 64 MB image loaded into each guest *)
    let image =
      Memory.File_image.generate (Sim.Ctx.fork_rng cctx) ~name:"fedora22-resident"
        ~pages:(64 * 1024 * 1024 / Memory.Page.size_bytes)
    in
    for k = 1 to n do
      let name = Printf.sprintf "tenant-%d" k in
      let cfg =
        { (Vmm.Qemu_config.default ~name) with
          Vmm.Qemu_config.memory_mb = 128;
          monitor_port = 5555 + k;
          vnc_display = k;
          disk =
            { (Vmm.Qemu_config.default ~name).Vmm.Qemu_config.disk with
              Vmm.Qemu_config.image = name ^ ".qcow2" } }
      in
      let vm = Result.get_ok (Vmm.Hypervisor.launch host cfg) in
      ignore (Result.get_ok (Vmm.Vm.load_file vm image));
      ignore (Sim.Engine.run_for engine (Sim.Time.mul (Memory.Ksm.time_for_full_pass ksm) 2.5))
    done;
    let saved_mb =
      float_of_int (Memory.Ksm.pages_sharing ksm * Memory.Page.size_bytes) /. 1024. /. 1024.
    in
    [
      string_of_int n;
      Printf.sprintf "%d MB" (n * 128);
      Printf.sprintf "%.0f MB" saved_mb;
      Printf.sprintf "%d" (Memory.Ksm.pages_shared ksm);
    ]
  in
  let rows =
    (* skulkscope: allow rng-escape — seed_of only reads the immutable seed field: every tenant-count row replays the same base seed *)
    Sim.Parallel.map_ctx ~jobs ~seed_of:(fun _ -> Sim.Ctx.seed ctx) ~ctx
      ~trials:tenant_counts (fun i cctx -> trial cctx (i + 1))
  in
  Bench_util.table
    ~header:[ "tenants"; "nominal RAM"; "RAM saved by KSM"; "stable-tree frames" ]
    ~rows;
  Bench_util.note
    "savings grow with each same-image tenant (zero pages plus the shared resident set); \
     this economic incentive is why the dedup side channel exists in the first place"

(* abl-autoconverge: the attacker's stealth trade-off when the victim's
   workload dirties faster than the channel drains - QEMU's
   auto-converge finishes the migration by visibly braking the guest. *)
let abl_autoconverge ctx =
  Bench_util.section
    "abl-autoconverge: forcing the kernel-compile migration to converge (stealth trade-off)";
  let run ~auto_converge ?(xbzrle = false) () =
    let mp = Vmm.Layers.migration_pair ~nested_dest:true ctx in
    let cctx = mp.Vmm.Layers.mp_ctx in
    let engine = Sim.Ctx.engine cctx in
    let source = mp.Vmm.Layers.mp_source in
    let wenv =
      Workload.Exec_env.make ~vm:source ~ctx:cctx ~level:(Vmm.Vm.level source)
        ~ram:(Vmm.Vm.ram source)
        ~rng:(Sim.Ctx.fork_rng cctx)
        ()
    in
    let handle = Workload.Background.start wenv (Workload.Kernel_compile.background ()) in
    ignore (Sim.Engine.run_for engine (Sim.Time.s 2.));
    let config =
      { Migration.Precopy.default_config with Migration.Precopy.auto_converge; xbzrle }
    in
    let result =
      match Migration.Precopy.migrate ~config cctx ~source ~dest:mp.Vmm.Layers.mp_dest () with
      | Ok o -> Migration.Outcome.stats_exn o
      | Error e -> failwith e
    in
    Workload.Background.stop handle;
    let ran = Workload.Background.ticks handle in
    let lost = Workload.Background.throttled_ticks handle in
    let slowdown =
      if ran + lost = 0 then 0. else float_of_int lost /. float_of_int (ran + lost) *. 100.
    in
    (result, slowdown)
  in
  let off, _ = run ~auto_converge:false () in
  let on_, slowdown = run ~auto_converge:true () in
  let xbz, _ = run ~auto_converge:false ~xbzrle:true () in
  let row label (r : Migration.Precopy.result) throttle victim =
    [
      label;
      Sim.Time.to_string r.Migration.Precopy.total_time;
      string_of_int (List.length r.Migration.Precopy.rounds);
      string_of_bool r.Migration.Precopy.converged;
      throttle;
      victim;
    ]
  in
  Bench_util.table
    ~header:[ "strategy"; "install time"; "rounds"; "converged"; "max throttle"; "victim slowdown" ]
    ~rows:
      [
        row "plain pre-copy" off "-" "none";
        row "auto-converge" on_
          (Printf.sprintf "%.0f%%" (on_.Migration.Precopy.max_throttle *. 100.))
          (Printf.sprintf "%.0f%% of CPU ticks lost" slowdown);
        row "xbzrle delta compression" xbz "-" "none";
      ];
  Bench_util.note
    "auto-converge completes the install far sooner, but the victim's build visibly \
     stalls while it runs - exactly the 'performance change' the paper says is the \
     rootkit's only observable footprint; xbzrle is the stealthier fix: deltas shrink \
     re-sent pages enough for the stream to out-run the dirty rate"

(* abl-postcopy: the paper claims the attack applies to both migration
   strategies; compare installation times. *)
let abl_postcopy ctx =
  Bench_util.section "abl-postcopy: installation time, pre-copy vs post-copy";
  let install strategy =
    let cctx = Sim.Ctx.fork ctx in
    let uplink = Net.Fabric.Switch.create cctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
    let host = Vmm.Hypervisor.create_l0 cctx ~name:"host" ~uplink ~addr:"192.168.1.100" in
    let registry = Migration.Registry.create () in
    let target_cfg =
      Vmm.Qemu_config.with_hostfwd (Vmm.Qemu_config.default ~name:"guest0") [ (2222, 22) ]
    in
    (match Vmm.Hypervisor.launch host target_cfg with Ok _ -> () | Error e -> failwith e);
    let config =
      { (Cloudskulk.Install.default_config ~target_name:"guest0") with
        Cloudskulk.Install.strategy }
    in
    match Cloudskulk.Install.run ~config cctx ~host ~registry ~target_name:"guest0" with
    | Ok r -> r
    | Error e -> failwith e
  in
  let pre = install (Migration.Wiring.Pre_copy Migration.Precopy.default_config) in
  let post = install (Migration.Wiring.Post_copy Migration.Postcopy.default_config) in
  let post_downtime =
    match post.Cloudskulk.Install.postcopy with
    | Some p -> Sim.Time.to_string p.Migration.Postcopy.downtime
    | None -> "-"
  in
  let pre_downtime =
    match pre.Cloudskulk.Install.precopy with
    | Some p -> Sim.Time.to_string p.Migration.Precopy.downtime
    | None -> "-"
  in
  Bench_util.table
    ~header:[ "strategy"; "install time"; "victim downtime" ]
    ~rows:
      [
        [ "pre-copy"; Sim.Time.to_string pre.Cloudskulk.Install.total_time; pre_downtime ];
        [ "post-copy"; Sim.Time.to_string post.Cloudskulk.Install.total_time; post_downtime ];
      ];
  Bench_util.note
    "CloudSkulk installs over either strategy (Section II-A); post-copy trades a shorter \
     freeze for a longer vulnerable background-pull window"

let specs =
  let open Harness.Experiment in
  [
    make ~id:"abl-ksm" ~doc:"Ablation: ksmd pacing vs detector wait" ~default_seed:5
      (fun { ctx; _ } -> abl_ksm ctx);
    make ~id:"abl-pages" ~doc:"Ablation: probe size" ~default_seed:5 (fun { ctx; _ } ->
        abl_pages ctx);
    make ~id:"abl-sync" ~doc:"Ablation: attacker sync evasion cost" ~default_seed:5
      (fun { jobs; ctx; _ } -> abl_sync ~jobs ctx);
    make ~id:"abl-postcopy" ~doc:"Ablation: pre-copy vs post-copy install" ~default_seed:5
      (fun { ctx; _ } -> abl_postcopy ctx);
    make ~id:"abl-density" ~doc:"Ablation: KSM savings across same-image tenants"
      ~default_seed:5 (fun { jobs; ctx; _ } -> abl_density ~jobs ctx);
    make ~id:"abl-autoconverge" ~doc:"Ablation: auto-converge stealth trade-off"
      ~default_seed:5 (fun { ctx; _ } -> abl_autoconverge ctx);
  ]
