(* skulkfuzz as a registry experiment: a time-boxed smoke run of the
   coverage-guided scenario fuzzer (tools/skulkfuzz is the standalone
   frontend with corpus management). Budget scales with --trials so CI
   can pin an exact cost; the summary always reports the feedback-free
   random baseline at the same budget - the guided loop must discover
   strictly more distinct behaviour signatures. *)

let run { Harness.Experiment.trials; jobs; shards = _; ctx } =
  Bench_util.section "Coverage-guided scenario fuzzing (skulkfuzz smoke)";
  let budget = 8 * trials in
  let stats =
    Fuzz.Engine.run
      {
        Fuzz.Engine.budget;
        batch = 8;
        jobs;
        seed = Sim.Ctx.seed ctx;
        initial = [];
        baseline = true;
      }
  in
  let i = string_of_int in
  Bench_util.table
    ~header:[ "metric"; "guided"; "random baseline" ]
    ~rows:
      [
        [ "programs executed"; i stats.Fuzz.Engine.executed; i stats.Fuzz.Engine.executed ];
        [ "distinct features"; i stats.Fuzz.Engine.guided_features; i stats.Fuzz.Engine.random_features ];
        [
          "distinct signatures";
          i stats.Fuzz.Engine.guided_signatures;
          i stats.Fuzz.Engine.random_signatures;
        ];
        [ "corpus programs"; i (List.length stats.Fuzz.Engine.corpus); "-" ];
        [ "oracle violations"; i (List.length stats.Fuzz.Engine.finds); "-" ];
      ];
  List.iter
    (fun (f : Fuzz.Engine.find) ->
      Printf.printf "  VIOLATION %s\n    minimised: %s\n"
        (Fuzz.Oracle.to_string f.Fuzz.Engine.find_violation)
        (Fuzz.Program.summary f.Fuzz.Engine.find_program))
    stats.Fuzz.Engine.finds;
  Printf.printf "\n  guided %s random on distinct signatures (%d vs %d)\n"
    (if stats.Fuzz.Engine.guided_signatures > stats.Fuzz.Engine.random_signatures then "beats"
     else "DOES NOT beat")
    stats.Fuzz.Engine.guided_signatures stats.Fuzz.Engine.random_signatures;
  Bench_util.note
    "mutation compounds corpus programs into action interleavings (workload + migration + \
     detect + monitor chatter) that 4-action blind generation essentially never emits; every \
     execution replays from its program alone, so finds minimise and re-run byte-identically"

let spec =
  Harness.Experiment.make ~default_seed:42 ~id:"fuzz"
    ~doc:"skulkfuzz: coverage-guided scenario fuzzing smoke run" run
