(* Standalone event-engine benchmark, used as the CI perf smoke: prints
   wheel-vs-heap queue throughput and incremental-vs-full KSM rescan
   cost, and exits non-zero if the timing wheel stops clearly beating
   the heap at high occupancy or the incremental rescan stops clearly
   beating the full sweep. The gates are deliberately looser than the
   speedups recorded in BENCH_scan.json (~6x and ~10x+ on a quiet
   machine) so shared CI runners do not flake; a real regression - the
   wheel degrading to heap-like behaviour - trips them immediately.

   Usage: queue_bench [--quick]   (--quick shrinks iteration counts) *)

let () =
  let quick = Array.exists (fun a -> String.equal a "--quick") Sys.argv in
  let ops = if quick then 200_000 else 1_000_000 in
  let rescan_iters = if quick then 40 else 200 in
  let row name ns = Printf.printf "  %-34s %10.1f ns/op %12.0f events/s\n" name ns (1e9 /. ns) in
  Printf.printf "event queue: steady-state schedule+expire (%d ops)\n" ops;
  let wheel_1e3 = Event_bench.queue_ns_per_op Event_bench.wheel ~pending:1_000 ~ops in
  let heap_1e3 = Event_bench.queue_ns_per_op Event_bench.heap ~pending:1_000 ~ops in
  let wheel_1e5 = Event_bench.queue_ns_per_op Event_bench.wheel ~pending:100_000 ~ops in
  let heap_1e5 = Event_bench.queue_ns_per_op Event_bench.heap ~pending:100_000 ~ops in
  row "wheel, 1e3 pending" wheel_1e3;
  row "heap,  1e3 pending" heap_1e3;
  row "wheel, 1e5 pending" wheel_1e5;
  row "heap,  1e5 pending" heap_1e5;
  let speedup = heap_1e5 /. wheel_1e5 in
  Printf.printf "  wheel speedup at 1e5 pending: %.2fx\n" speedup;
  Printf.printf "ksm rescan: 16384 pages, ~1%% dirtied per wakeup (%d wakeups)\n" rescan_iters;
  let full =
    Event_bench.ksm_rescan_ns_per_dirtied_page ~incremental:false ~iters:rescan_iters
  in
  let incr_ =
    Event_bench.ksm_rescan_ns_per_dirtied_page ~incremental:true ~iters:rescan_iters
  in
  Printf.printf "  %-34s %10.1f ns/dirtied page\n" "full sweep" full;
  Printf.printf "  %-34s %10.1f ns/dirtied page\n" "incremental sweep" incr_;
  let rescan_speedup = full /. incr_ in
  Printf.printf "  incremental speedup: %.2fx\n" rescan_speedup;
  let failures = ref [] in
  if speedup < 2. then
    failures := Printf.sprintf "wheel speedup %.2fx < 2x at 1e5 pending" speedup :: !failures;
  if rescan_speedup < 2. then
    failures := Printf.sprintf "incremental rescan speedup %.2fx < 2x" rescan_speedup :: !failures;
  match !failures with
  | [] -> print_endline "smoke: OK"
  | fs ->
    List.iter (fun f -> Printf.eprintf "smoke FAIL: %s\n" f) fs;
    exit 1
