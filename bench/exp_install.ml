(* Section V-A: end-to-end installation of CloudSkulk on an idle 1 GB
   victim - the paper's video demonstrates this taking under a minute,
   dominated by the single-host live migration. *)

let run ctx =
  Bench_util.section "Installation: the four-step attack on an idle victim (Section V-A)";
  let ctx = Sim.Ctx.fork ctx in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"host" ~uplink ~addr:"192.168.1.100" in
  let registry = Migration.Registry.create () in
  let target_cfg =
    Vmm.Qemu_config.with_hostfwd (Vmm.Qemu_config.default ~name:"guest0") [ (2222, 22) ]
  in
  (match Vmm.Hypervisor.launch host target_cfg with
  | Ok _ -> ()
  | Error e -> failwith e);
  match Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0" with
  | Error e -> Printf.printf "  install failed: %s\n" e
  | Ok report ->
    let rows =
      List.map
        (fun (s : Cloudskulk.Install.step_report) ->
          [
            Cloudskulk.Install.step_name s.Cloudskulk.Install.step;
            Sim.Time.to_string
              (Sim.Time.diff s.Cloudskulk.Install.finished s.Cloudskulk.Install.started);
            s.Cloudskulk.Install.detail;
          ])
        report.Cloudskulk.Install.steps
    in
    Bench_util.table ~header:[ "step"; "duration"; "detail" ] ~rows;
    Printf.printf "\n  total installation time: %s (pid %d -> %d)\n"
      (Sim.Time.to_string report.Cloudskulk.Install.total_time)
      report.Cloudskulk.Install.old_pid report.Cloudskulk.Install.new_pid;
    (match report.Cloudskulk.Install.precopy with
    | Some p ->
      Printf.printf "  migration: %d rounds, %d pages, downtime %s\n"
        (List.length p.Migration.Precopy.rounds)
        p.Migration.Precopy.total_pages_sent
        (Sim.Time.to_string p.Migration.Precopy.downtime)
    | None -> ());
    Bench_util.paper_vs_measured ~paper:"installation under 1 minute (idle victim)"
      ~measured:
        (Printf.sprintf "%.0f s (%s)"
           (Sim.Time.to_s report.Cloudskulk.Install.total_time)
           (if Sim.Time.to_s report.Cloudskulk.Install.total_time < 60. then "under 1 minute"
            else "OVER 1 minute"))

let spec =
  Harness.Experiment.make ~id:"install" ~doc:"Section V-A: installation walkthrough"
    ~default_seed:3 (fun { Harness.Experiment.ctx; _ } -> run ctx)
