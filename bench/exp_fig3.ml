(* Fig 3: Netperf TCP_STREAM throughput at L0/L1/L2, 5 runs each. The
   paper's finding is a negative result: all three levels perform the
   same to within run-to-run noise (RSDs 1.11% / 10.32% / 3.96%), so the
   rootkit's extra layer is invisible to a network-bound user. *)

let throughput ~level seed =
  let env =
    match Vmm.Level.to_int level with
    | 0 -> Vmm.Layers.bare_metal ~seed ()
    | 1 -> Vmm.Layers.single_guest ~seed ()
    | _ -> Vmm.Layers.nested_guest ~seed ()
  in
  let wenv = Workload.Exec_env.of_layers env in
  (Workload.Netperf.run wenv).Workload.Netperf.throughput_mbit_s

let run ?(runs = 5) () =
  Bench_util.section "Fig 3: Netperf TCP_STREAM throughput (5 runs per level)";
  let levels = [ Vmm.Level.l0; Vmm.Level.l1; Vmm.Level.l2 ] in
  let summaries =
    List.map (fun level -> (level, Bench_util.repeat ~runs (throughput ~level))) levels
  in
  let rows =
    List.mapi
      (fun i (level, (s : Sim.Stats.summary)) ->
        let label =
          if i = 0 then "-"
          else
            let _, (prev : Sim.Stats.summary) = List.nth summaries (i - 1) in
            Bench_util.pct_label prev.Sim.Stats.mean s.Sim.Stats.mean
        in
        [
          Vmm.Level.to_string level;
          Printf.sprintf "%.1f Mbit/s" s.Sim.Stats.mean;
          Bench_util.fmt_rsd s;
          Printf.sprintf "%.1f Mbit/s" s.Sim.Stats.p95;
          label;
        ])
      summaries
  in
  Bench_util.table ~header:[ "level"; "throughput"; "rsd"; "p95"; "vs layer below" ] ~rows;
  let spread =
    let means = List.map (fun (_, (s : Sim.Stats.summary)) -> s.Sim.Stats.mean) summaries in
    let mx = List.fold_left Float.max 0. means and mn = List.fold_left Float.min 1e12 means in
    (mx -. mn) /. mn *. 100.
  in
  Bench_util.paper_vs_measured
    ~paper:"levels within noise (RSDs 1.11% / 10.32% / 3.96%); L2 read +8.95% vs L1"
    ~measured:(Printf.sprintf "max spread across levels %.1f%% (within noise)" spread)
