(* Fig 3: Netperf TCP_STREAM throughput at L0/L1/L2, 5 runs each. The
   paper's finding is a negative result: all three levels perform the
   same to within run-to-run noise (RSDs 1.11% / 10.32% / 3.96%), so the
   rootkit's extra layer is invisible to a network-bound user. *)

let throughput ~level ctx =
  let env = Vmm.Layers.of_level ctx level in
  let wenv = Workload.Exec_env.of_layers env in
  (Workload.Netperf.run wenv).Workload.Netperf.throughput_mbit_s

let run { Harness.Experiment.trials = runs; ctx; _ } =
  Bench_util.section "Fig 3: Netperf TCP_STREAM throughput (5 runs per level)";
  let levels = [ Vmm.Level.l0; Vmm.Level.l1; Vmm.Level.l2 ] in
  let summaries =
    List.map
      (fun level ->
        ( level,
          Bench_util.repeat ~root:(Sim.Ctx.seed ctx) ~runs (fun seed ->
              throughput ~level (Sim.Ctx.with_seed ctx seed)) ))
      levels
  in
  Bench_util.level_table ~metric:"throughput"
    ~fmt:(fun v -> Printf.sprintf "%.1f Mbit/s" v)
    summaries;
  let spread =
    let means = List.map (fun (_, (s : Sim.Stats.summary)) -> s.Sim.Stats.mean) summaries in
    let mx = List.fold_left Float.max 0. means and mn = List.fold_left Float.min 1e12 means in
    (mx -. mn) /. mn *. 100.
  in
  Bench_util.paper_vs_measured
    ~paper:"levels within noise (RSDs 1.11% / 10.32% / 3.96%); L2 read +8.95% vs L1"
    ~measured:(Printf.sprintf "max spread across levels %.1f%% (within noise)" spread)

let spec = Harness.Experiment.make ~id:"fig3" ~doc:"Fig 3: Netperf throughput L0/L1/L2" run
