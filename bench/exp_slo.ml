(* Streaming SOC observability: the ROADMAP's "detector-as-a-service
   under streaming load" item. Two views of the same question - how fast
   and how reliably does the operator learn about a CloudSkulk install?

   - The continuous monitor ({!Cloudskulk.Detector_service.start_monitor})
     runs against an infected tenant per trial; time-to-detect is the gap
     between tenant registration and the first Nested_vm_detected
     verdict, reported as p50/p99 SLOs with pass/fail thresholds.
   - The offline protocol is swept across probe size and decision
     threshold over the clean/infected/synced-evasion matrix; thresholds
     are re-scored post hoc via {!Cloudskulk.Dedup_detector.verdict_for_ratio},
     so the sweep costs one protocol run per (probe size, scenario, trial). *)

let fmt_min t = Printf.sprintf "%.1f min" (Sim.Time.to_s t /. 60.)

let monitor_policy =
  {
    Cloudskulk.Detector_service.default_policy with
    Cloudskulk.Detector_service.sweep_every = Sim.Time.minutes 10.;
    dedup_every_n_sweeps = 2;
    probe_pages = 8;
    probe_budget = 1;
    event_log_capacity = 32;
  }

(* SLO thresholds: the rotation interval is 20 min, so a healthy monitor
   should detect a standing infection within one rotation at the median
   and within a rotation plus a deferral window and probe time at the
   tail. *)
let slo_p50 = Sim.Time.minutes 20.
let slo_p99 = Sim.Time.minutes 35.

(* The monitored install runs without VT-x: the variant the VMCS-scan
   auditor misses (exp_detect's baseline table), so detection has to
   come from the rotation's dedup probes rather than an instant audit
   alarm - the jittered-scheduling story, not the loud-artifact one. *)
let run_monitor_trial cctx =
  let sc =
    Cloudskulk.Scenarios.infected ~customer_memory_mb:256
      ~install_config:
        { (Cloudskulk.Install.default_config ~target_name:"guest0") with
          Cloudskulk.Install.use_vtx = false }
      cctx
  in
  let open Cloudskulk.Detector_service in
  let service =
    create ~policy:monitor_policy sc.Cloudskulk.Scenarios.ctx sc.Cloudskulk.Scenarios.host
  in
  let env () = sc.Cloudskulk.Scenarios.detector_env in
  (* two tenant registrations against the same host share the window's
     single-probe budget, so colliding rotations defer *)
  register_tenant service ~name:"tenant-a" ~env;
  register_tenant service ~name:"tenant-b" ~env;
  start_monitor service;
  ignore
    (Sim.Engine.run_for
       (Sim.Ctx.engine sc.Cloudskulk.Scenarios.ctx)
       (Sim.Time.minutes 90.));
  stop service;
  let probes name =
    match tenant_state service name with
    | Some st -> st.probes
    | None -> invalid_arg "slo: tenant vanished"
  in
  ( time_to_detect service "tenant-a",
    time_to_detect service "tenant-b",
    probes "tenant-a" + probes "tenant-b",
    budget_deferrals service,
    events_dropped service,
    sweeps_run service )

let roc_pages = [ 2; 4; 8 ]

(* Merged writes sit ~13x over baseline and unmerged ones within a few
   percent of it, so the interesting thresholds are the extremes: near
   1 the detector also catches the synced-evasion attacker but starts
   false-positive-ing on clean t2 noise; past the merge plateau it goes
   blind (t1 no longer reads as merged). The paper's default (3.0) sits
   on the wide flat shelf between the two. *)
let roc_ratios = [ 1.05; 1.2; 3.0; 13.0; 16.0 ]

let run_roc_trial cctx =
  List.map
    (fun pages ->
      let config =
        { Cloudskulk.Dedup_detector.default_config with
          Cloudskulk.Dedup_detector.file_pages = pages }
      in
      let outcome sc =
        match Cloudskulk.Dedup_detector.run ~config sc.Cloudskulk.Scenarios.detector_env with
        | Ok o -> o
        | Error e -> invalid_arg ("slo: protocol failed: " ^ e)
      in
      let o_clean = outcome (Cloudskulk.Scenarios.clean ~customer_memory_mb:256 cctx) in
      let o_inf = outcome (Cloudskulk.Scenarios.infected ~customer_memory_mb:256 cctx) in
      let o_sync =
        outcome
          (Cloudskulk.Scenarios.infected ~customer_memory_mb:256
             ~attacker_syncs_changes:true cctx)
      in
      (pages, o_clean, o_inf, o_sync))
    roc_pages

(* All per-page write times of one trial's protocol runs, for the
   merged sketch-backed latency summary. *)
let trial_stats trial =
  let st = Sim.Stats.create () in
  List.iter
    (fun (_, a, b, c) ->
      List.iter
        (fun (o : Cloudskulk.Dedup_detector.outcome) ->
          List.iter
            (fun (m : Cloudskulk.Dedup_detector.measurement) ->
              Array.iter (Sim.Stats.add st) m.Cloudskulk.Dedup_detector.per_page_ns)
            [ o.Cloudskulk.Dedup_detector.t0; o.Cloudskulk.Dedup_detector.t1;
              o.Cloudskulk.Dedup_detector.t2 ])
        [ a; b; c ])
    trial;
  st

let positive o ~ratio =
  match Cloudskulk.Dedup_detector.verdict_for_ratio o ~ratio with
  | Cloudskulk.Dedup_detector.Nested_vm_detected -> true
  | Cloudskulk.Dedup_detector.No_nested_vm | Cloudskulk.Dedup_detector.Inconclusive _ ->
    false

let run { Harness.Experiment.trials; jobs; shards = _; ctx } =
  Bench_util.section
    "Streaming SOC observability: detection-latency SLOs and ROC matrix";

  Bench_util.subsection
    "continuous monitor: time-to-detect (stealthy infected host, 2 tenants per trial)";
  let monitor_results =
    Sim.Parallel.map_ctx ~jobs ~ctx ~trials (fun _ cctx -> run_monitor_trial cctx)
  in
  let ttd_stats = Sim.Stats.create () in
  let detected = ref 0 and deferrals = ref 0 and dropped = ref 0 in
  let fmt_ttd ttd =
    match ttd with
    | Some d ->
      incr detected;
      Sim.Stats.add_time ttd_stats d;
      fmt_min d
    | None -> "not detected"
  in
  let rows =
    List.mapi
      (fun i (ttd_a, ttd_b, probes, defs, drops, audits) ->
        deferrals := !deferrals + defs;
        dropped := !dropped + drops;
        [
          Printf.sprintf "infected #%d" (i + 1);
          fmt_ttd ttd_a;
          fmt_ttd ttd_b;
          string_of_int probes;
          string_of_int defs;
          string_of_int drops;
          string_of_int audits;
        ])
      monitor_results
  in
  Bench_util.table
    ~header:
      [ "trial"; "ttd tenant-a"; "ttd tenant-b"; "probes"; "deferrals"; "dropped"; "audits" ]
    ~rows;
  let p50 = Sim.Time.ns (int_of_float (Sim.Stats.percentile ttd_stats 50.)) in
  let p99 = Sim.Time.ns (int_of_float (Sim.Stats.percentile ttd_stats 99.)) in
  let slo name measured threshold =
    Printf.printf "  SLO %s <= %s: %s (measured %s)\n" name (fmt_min threshold)
      (if Sim.Time.( <= ) measured threshold then "PASS" else "FAIL")
      (fmt_min measured)
  in
  Printf.printf "\n  detected: %d / %d tenants\n" !detected (2 * trials);
  slo "p50 time-to-detect" p50 slo_p50;
  slo "p99 time-to-detect" p99 slo_p99;
  Printf.printf "  probe-budget deferrals: %d; ring-buffer events dropped: %d\n" !deferrals
    !dropped;
  Bench_util.note
    "probes are jittered over a %s rotation (budget %d per %s window), so time-to-detect \
     is the scheduling delay plus one protocol run"
    (fmt_min
       (Sim.Time.mul monitor_policy.Cloudskulk.Detector_service.sweep_every
          (float_of_int monitor_policy.Cloudskulk.Detector_service.dedup_every_n_sweeps)))
    monitor_policy.Cloudskulk.Detector_service.probe_budget
    (fmt_min monitor_policy.Cloudskulk.Detector_service.sweep_every);

  Bench_util.subsection "ROC: offline protocol across probe size x decision threshold";
  let roc_results =
    Sim.Parallel.map_ctx ~jobs ~ctx ~trials (fun _ cctx -> run_roc_trial cctx)
  in
  let roc_rows =
    List.concat_map
      (fun pages ->
        List.map
          (fun ratio ->
            let tp = ref 0 and fp = ref 0 in
            List.iter
              (List.iter (fun (p, o_clean, o_inf, o_sync) ->
                   if p = pages then begin
                     if positive o_inf ~ratio then incr tp;
                     if positive o_sync ~ratio then incr tp;
                     if positive o_clean ~ratio then incr fp
                   end))
              roc_results;
            let positives = 2 * trials and negatives = trials in
            [
              string_of_int pages;
              Printf.sprintf "%.2f" ratio;
              Printf.sprintf "%d/%d" !tp positives;
              Printf.sprintf "%d/%d" !fp negatives;
            ])
          roc_ratios)
      roc_pages
  in
  Bench_util.table
    ~header:[ "probe pages"; "merge ratio"; "TPR"; "FPR" ]
    ~rows:roc_rows;
  Bench_util.note
    "positives: infected + synced-evasion runs; negatives: clean runs. Thresholds are \
     re-scored from recorded t0/t1/t2 means (verdict_for_ratio), one protocol run per \
     (probe size, scenario, trial)";

  (* The aggregate latency digest exercises the full sketch path: the
     per-trial accumulators are exact, the merged one is capped below
     the sample count so it spills into its t-digest. *)
  let agg = Sim.Stats.create ~sample_cap:256 () in
  List.iter (fun trial -> Sim.Stats.merge_into ~into:agg (trial_stats trial)) roc_results;
  Printf.printf
    "\n  aggregate probe-write latency (sketch-backed, cap 256): n=%d p50=%.0f ns \
     p95=%.0f ns p99=%.0f ns%s\n"
    (Sim.Stats.count agg)
    (Sim.Stats.percentile agg 50.)
    (Sim.Stats.percentile agg 95.)
    (Sim.Stats.percentile agg 99.)
    (if Sim.Stats.is_sketched agg then " [digest]" else "")

let spec =
  Harness.Experiment.make ~id:"slo"
    ~doc:"SOC observability: time-to-detect SLOs and ROC matrix" run
