(* Section VI-C: detector accuracy across repeated trials on clean and
   infected hosts, plus the two baseline detectors' behaviour on the
   same scenarios. *)

let verdict_of scenario =
  match Cloudskulk.Dedup_detector.run scenario.Cloudskulk.Scenarios.detector_env with
  | Ok o -> Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict
  | Error e -> "error: " ^ e

let run ?(trials = 5) ?(jobs = 1) () =
  Bench_util.section "Detection accuracy (Section VI-C): repeated trials";
  (* Each trial is self-contained (own engine, own seed) and returns its
     verdicts; printing happens afterwards in trial order, so the output
     is byte-identical whatever [jobs] is. *)
  let verdicts =
    Sim.Parallel.map_seeds ~jobs ~root_seed:1 ~trials (fun ~seed ->
        let v_clean = verdict_of (Cloudskulk.Scenarios.clean ~seed ()) in
        let v_inf = verdict_of (Cloudskulk.Scenarios.infected ~seed ()) in
        (v_clean, v_inf))
  in
  let rows = ref [] in
  let correct = ref 0 in
  List.iteri
    (fun i (v_clean, v_inf) ->
      let seed = i + 1 in
      if
        v_clean
        = Cloudskulk.Dedup_detector.verdict_to_string Cloudskulk.Dedup_detector.No_nested_vm
      then incr correct;
      rows := [ Printf.sprintf "clean #%d" seed; v_clean ] :: !rows;
      if
        v_inf
        = Cloudskulk.Dedup_detector.verdict_to_string Cloudskulk.Dedup_detector.Nested_vm_detected
      then incr correct;
      rows := [ Printf.sprintf "infected #%d" seed; v_inf ] :: !rows)
    verdicts;
  Bench_util.table ~header:[ "trial"; "dedup detector verdict" ] ~rows:(List.rev !rows);
  Printf.printf "\n  accuracy: %d / %d\n" !correct (2 * trials);
  (* baselines on one representative pair *)
  Bench_util.subsection "baseline detectors on the same scenarios";
  let clean = Cloudskulk.Scenarios.clean ~seed:1 () in
  let infected = Cloudskulk.Scenarios.infected ~seed:1 () in
  let infected_soft =
    Cloudskulk.Scenarios.infected ~seed:1
      ~install_config:
        { (Cloudskulk.Install.default_config ~target_name:"guest0") with
          Cloudskulk.Install.use_vtx = false }
      ()
  in
  let vmcs sc = (Cloudskulk.Vmcs_scan.scan_host sc.Cloudskulk.Scenarios.host).verdict in
  Bench_util.table
    ~header:[ "scenario"; "VMCS memory scan"; "dedup detector" ]
    ~rows:
      [
        [ "clean"; string_of_bool (vmcs clean); verdict_of clean ];
        [ "infected (VT-x)"; string_of_bool (vmcs infected); verdict_of infected ];
        [ "infected (no VT-x)"; string_of_bool (vmcs infected_soft); verdict_of infected_soft ];
      ];
  Bench_util.paper_vs_measured
    ~paper:"dedup detection effective in both scenarios; VMCS scan fails without VT-x"
    ~measured:"as above: dedup catches the no-VT-x variant the VMCS scan misses"
