(* Section VI-C: detector accuracy across repeated trials on clean and
   infected hosts, plus the two baseline detectors' behaviour on the
   same scenarios. *)

let verdict_of scenario =
  match Cloudskulk.Dedup_detector.run scenario.Cloudskulk.Scenarios.detector_env with
  | Ok o -> Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict
  | Error e -> "error: " ^ e

(* Fault-profile variant: the same accuracy protocol with channel
   faults injected into the install's live migration. An install that
   aborts under the profile is reported, not counted as a verdict. *)
let run_with_faults ~trials ~jobs ~ctx =
  Bench_util.section
    (Printf.sprintf "Detection accuracy under channel faults (profile: %s)"
       (Sim.Fault.profile_name (Sim.Ctx.faults ctx)));
  let results =
    Sim.Parallel.map_ctx ~jobs ~ctx ~trials (fun _ cctx ->
        match Cloudskulk.Scenarios.infected_result cctx with
        | Ok sc ->
          let outcome =
            match sc.Cloudskulk.Scenarios.install_report with
            | Some r ->
              Printf.sprintf "%s (install %s)" r.Cloudskulk.Install.migration_outcome
                (Sim.Time.to_string r.Cloudskulk.Install.total_time)
            | None -> "no install report"
          in
          (outcome, verdict_of sc)
        | Error f ->
          (* render exactly what the raising surface used to print, so
             faulted runs stay byte-identical to the historical output *)
          ( "install failed: Scenarios." ^ Cloudskulk.Scenarios.install_failure_to_string f,
            "-" ))
  in
  let detected = ref 0 and attempted = ref 0 in
  let rows =
    List.mapi
      (fun i (outcome, verdict) ->
        if verdict <> "-" then begin
          incr attempted;
          if
            verdict
            = Cloudskulk.Dedup_detector.verdict_to_string
                Cloudskulk.Dedup_detector.Nested_vm_detected
          then incr detected
        end;
        [ Printf.sprintf "infected #%d" (i + 1); outcome; verdict ])
      results
  in
  Bench_util.table ~header:[ "trial"; "migration outcome"; "dedup detector verdict" ] ~rows;
  Printf.printf "\n  detected: %d / %d installs that landed (%d/%d attempts survived)\n"
    !detected !attempted !attempted trials;
  Bench_util.note
    "faults only stretch the install (or abort it); a landed rootkit is detected exactly \
     as in the fault-free runs - the detector keys on merge state, not timing"

let run { Harness.Experiment.trials; jobs; shards = _; ctx } =
  if not (Sim.Fault.is_none (Sim.Ctx.faults ctx)) then run_with_faults ~trials ~jobs ~ctx
  else begin
  Bench_util.section "Detection accuracy (Section VI-C): repeated trials";
  (* Each trial is self-contained (own engine, own seed) and returns its
     verdicts; printing happens afterwards in trial order, so the output
     is byte-identical whatever [jobs] is. Per-trial telemetry lands in
     child sinks that are merged in trial order, so exports are
     byte-identical across [jobs] too. *)
  let verdicts =
    Sim.Parallel.map_ctx ~jobs ~ctx ~trials (fun _ cctx ->
        let v_clean = verdict_of (Cloudskulk.Scenarios.clean cctx) in
        let v_inf = verdict_of (Cloudskulk.Scenarios.infected cctx) in
        (v_clean, v_inf))
  in
  let rows = ref [] in
  let correct = ref 0 in
  List.iteri
    (fun i (v_clean, v_inf) ->
      let seed = i + 1 in
      if
        v_clean
        = Cloudskulk.Dedup_detector.verdict_to_string Cloudskulk.Dedup_detector.No_nested_vm
      then incr correct;
      rows := [ Printf.sprintf "clean #%d" seed; v_clean ] :: !rows;
      if
        v_inf
        = Cloudskulk.Dedup_detector.verdict_to_string Cloudskulk.Dedup_detector.Nested_vm_detected
      then incr correct;
      rows := [ Printf.sprintf "infected #%d" seed; v_inf ] :: !rows)
    verdicts;
  Bench_util.table ~header:[ "trial"; "dedup detector verdict" ] ~rows:(List.rev !rows);
  Printf.printf "\n  accuracy: %d / %d\n" !correct (2 * trials);
  (* baselines on one representative pair *)
  Bench_util.subsection "baseline detectors on the same scenarios";
  let base = Sim.Ctx.with_seed ctx 1 in
  let clean = Cloudskulk.Scenarios.clean base in
  let infected = Cloudskulk.Scenarios.infected base in
  let infected_soft =
    Cloudskulk.Scenarios.infected
      ~install_config:
        { (Cloudskulk.Install.default_config ~target_name:"guest0") with
          Cloudskulk.Install.use_vtx = false }
      base
  in
  let vmcs sc = (Cloudskulk.Vmcs_scan.scan_host sc.Cloudskulk.Scenarios.host).verdict in
  Bench_util.table
    ~header:[ "scenario"; "VMCS memory scan"; "dedup detector" ]
    ~rows:
      [
        [ "clean"; string_of_bool (vmcs clean); verdict_of clean ];
        [ "infected (VT-x)"; string_of_bool (vmcs infected); verdict_of infected ];
        [ "infected (no VT-x)"; string_of_bool (vmcs infected_soft); verdict_of infected_soft ];
      ];
  Bench_util.paper_vs_measured
    ~paper:"dedup detection effective in both scenarios; VMCS scan fails without VT-x"
    ~measured:"as above: dedup catches the no-VT-x variant the VMCS scan misses"
  end

let spec =
  Harness.Experiment.make ~id:"detect" ~doc:"Section VI-C: detection accuracy (honours --faults)"
    run
