(* Fig 2: Linux kernel compile time at L0/L1/L2, 5 runs each, with the
   percentage-increase labels the paper prints over each bar. The +280%
   L0->L1 jump is the paper's ccache asymmetry (footnote 1), reproduced
   here by enabling the ccache model at L0 only. *)

let compile_time ~level ctx =
  let env = Vmm.Layers.of_level ctx level in
  let wenv = Workload.Exec_env.of_layers env in
  Sim.Time.to_s (Workload.Kernel_compile.run wenv)

let run { Harness.Experiment.trials = runs; ctx; _ } =
  Bench_util.section "Fig 2: Linux kernel compile timing (5 runs per level)";
  let levels = [ Vmm.Level.l0; Vmm.Level.l1; Vmm.Level.l2 ] in
  let summaries =
    List.map
      (fun level ->
        ( level,
          Bench_util.repeat ~root:(Sim.Ctx.seed ctx) ~runs (fun seed ->
              compile_time ~level (Sim.Ctx.with_seed ctx seed)) ))
      levels
  in
  Bench_util.level_table ~metric:"compile time" ~fmt:Bench_util.fmt_s summaries;
  Bench_util.paper_vs_measured
    ~paper:"+280% L0->L1 (ccache on L0 only), +25.7% L1->L2"
    ~measured:
      (let v i = (snd (List.nth summaries i)).Sim.Stats.mean in
       Printf.sprintf "%s L0->L1, %s L1->L2"
         (Bench_util.pct_label (v 0) (v 1))
         (Bench_util.pct_label (v 1) (v 2)));
  Bench_util.note "log-scale bar chart in the paper; the table above carries the same series"

let spec = Harness.Experiment.make ~id:"fig2" ~doc:"Fig 2: kernel compile timing L0/L1/L2" run
