(* Fig 2: Linux kernel compile time at L0/L1/L2, 5 runs each, with the
   percentage-increase labels the paper prints over each bar. The +280%
   L0->L1 jump is the paper's ccache asymmetry (footnote 1), reproduced
   here by enabling the ccache model at L0 only. *)

let compile_time ~level seed =
  let env =
    match Vmm.Level.to_int level with
    | 0 -> Vmm.Layers.bare_metal ~seed ()
    | 1 -> Vmm.Layers.single_guest ~seed ()
    | _ -> Vmm.Layers.nested_guest ~seed ()
  in
  let wenv = Workload.Exec_env.of_layers env in
  Sim.Time.to_s (Workload.Kernel_compile.run wenv)

let run ?(runs = 5) () =
  Bench_util.section "Fig 2: Linux kernel compile timing (5 runs per level)";
  let levels = [ Vmm.Level.l0; Vmm.Level.l1; Vmm.Level.l2 ] in
  let summaries =
    List.map (fun level -> (level, Bench_util.repeat ~runs (compile_time ~level))) levels
  in
  let rows =
    List.mapi
      (fun i (level, (s : Sim.Stats.summary)) ->
        let label =
          if i = 0 then "-"
          else
            let _, (prev : Sim.Stats.summary) = List.nth summaries (i - 1) in
            Bench_util.pct_label prev.Sim.Stats.mean s.Sim.Stats.mean
        in
        [
          Vmm.Level.to_string level;
          Bench_util.fmt_s s.Sim.Stats.mean;
          Bench_util.fmt_rsd s;
          Bench_util.fmt_s s.Sim.Stats.p95;
          label;
        ])
      summaries
  in
  Bench_util.table ~header:[ "level"; "compile time"; "rsd"; "p95"; "vs layer below" ] ~rows;
  Bench_util.paper_vs_measured
    ~paper:"+280% L0->L1 (ccache on L0 only), +25.7% L1->L2"
    ~measured:
      (let v i = (snd (List.nth summaries i)).Sim.Stats.mean in
       Printf.sprintf "%s L0->L1, %s L1->L2"
         (Bench_util.pct_label (v 0) (v 1))
         (Bench_util.pct_label (v 1) (v 2)));
  Bench_util.note "log-scale bar chart in the paper; the table above carries the same series"
