(* Shared helpers for the benchmark harness: section headers, table
   rendering, and repeated-run statistics. *)

let section title =
  let line = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n" s) fmt

(* Render a table with left-aligned first column and right-aligned data
   columns. *)
let table ~header ~rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
         row)
  in
  Printf.printf "%s\n" (render_row header);
  Printf.printf "%s\n" (String.make (String.length (render_row header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (render_row row)) rows

(* Run [f seed] for [runs] seeds starting at [root] and accumulate the
   float it returns. *)
let repeat ?(root = 1) ?(runs = 5) f =
  let stats = Sim.Stats.create () in
  for seed = root to root + runs - 1 do
    Sim.Stats.add stats (f seed)
  done;
  Sim.Stats.summary stats

(* Summarise floats produced elsewhere (e.g. by a parallel trial map). *)
let summary_of_list values =
  let stats = Sim.Stats.create () in
  List.iter (Sim.Stats.add stats) values;
  Sim.Stats.summary stats

let pct_label from_ to_ =
  Printf.sprintf "%+.1f%%" (Sim.Stats.percent_change ~from_ ~to_)

let fmt_s v = Printf.sprintf "%.1f s" v
let fmt_rsd (s : Sim.Stats.summary) = Printf.sprintf "%.1f%%" (s.Sim.Stats.rsd *. 100.)

let paper_vs_measured ~paper ~measured =
  Printf.printf "  paper: %s | measured: %s\n" paper measured

(* The per-level summary table Figs 2 and 3 share: one row per
   execution level with mean/rsd/p95 and the paper's percentage-increase
   label against the layer below. *)
let level_table ~metric ~fmt summaries =
  let rows =
    List.mapi
      (fun i (level, (s : Sim.Stats.summary)) ->
        let label =
          if i = 0 then "-"
          else
            let _, (prev : Sim.Stats.summary) = List.nth summaries (i - 1) in
            pct_label prev.Sim.Stats.mean s.Sim.Stats.mean
        in
        [
          Vmm.Level.to_string level;
          fmt s.Sim.Stats.mean;
          fmt_rsd s;
          fmt s.Sim.Stats.p95;
          label;
        ])
      summaries
  in
  table ~header:[ "level"; metric; "rsd"; "p95"; "vs layer below" ] ~rows

(* Compact rendering of a per-page series (Figs 5-6). *)
let sparkline values =
  let glyphs = [| '_'; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let mx = Array.fold_left Float.max 1e-9 values in
  String.init (Array.length values) (fun i ->
      let v = values.(i) /. mx in
      glyphs.(min 7 (int_of_float (v *. 8.))))

(* One detector measurement with its percentile summary and sparkline
   over the first [spark_pages] probed pages. *)
let measurement_line ~label ~(summary : Sim.Stats.summary) ~cow_fraction ~per_page_ns
    ?(spark_pages = 60) () =
  Printf.printf
    "  %-3s mean %7.0f ns  stddev %6.0f ns  p50 %7.0f ns  p95 %7.0f ns  merged pages \
     %3.0f%%  |%s|\n"
    label summary.Sim.Stats.mean summary.Sim.Stats.stddev summary.Sim.Stats.p50
    summary.Sim.Stats.p95 (cow_fraction *. 100.)
    (sparkline (Array.sub per_page_ns 0 (min spark_pages (Array.length per_page_ns))))
