(* Shared helpers for the benchmark harness: section headers, table
   rendering, and repeated-run statistics. *)

let section title =
  let line = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n" s) fmt

(* Render a table with left-aligned first column and right-aligned data
   columns. *)
let table ~header ~rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
         row)
  in
  Printf.printf "%s\n" (render_row header);
  Printf.printf "%s\n" (String.make (String.length (render_row header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (render_row row)) rows

(* Run [f seed] for [runs] seeds and accumulate the float it returns. *)
let repeat ?(runs = 5) f =
  let stats = Sim.Stats.create () in
  for seed = 1 to runs do
    Sim.Stats.add stats (f seed)
  done;
  Sim.Stats.summary stats

(* Summarise floats produced elsewhere (e.g. by a parallel trial map). *)
let summary_of_list values =
  let stats = Sim.Stats.create () in
  List.iter (Sim.Stats.add stats) values;
  Sim.Stats.summary stats

let pct_label from_ to_ =
  Printf.sprintf "%+.1f%%" (Sim.Stats.percent_change ~from_ ~to_)

let fmt_s v = Printf.sprintf "%.1f s" v
let fmt_rsd (s : Sim.Stats.summary) = Printf.sprintf "%.1f%%" (s.Sim.Stats.rsd *. 100.)

let paper_vs_measured ~paper ~measured =
  Printf.printf "  paper: %s | measured: %s\n" paper measured
