(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   each timing the representative unit of work that experiment leans on
   (real wall-clock of the simulator, not virtual time). Useful to track
   the simulator's own performance. *)

open Bechamel
open Toolkit

(* Table I: rendering the CVE table. *)
let test_table1 =
  Test.make ~name:"table1/render-cve-table"
    (Staged.stage (fun () -> ignore (Cloudskulk.Cve_data.render_table ())))

(* Fig 2: pricing one kernel-compile unit at every level. *)
let test_fig2 =
  let op = Workload.Kernel_compile.unit_op Workload.Kernel_compile.default_config in
  Test.make ~name:"fig2/compile-unit-cost"
    (Staged.stage (fun () ->
         ignore (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l0 op);
         ignore (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l1 op);
         ignore (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l2 op)))

(* Fig 3: one simulated netperf chunk sequence. *)
let test_fig3 =
  Test.make ~name:"fig3/flow-1MiB"
    (Staged.stage (fun () ->
         let ctx = Sim.Ctx.create () in
         ignore (Net.Flow.run ctx ~link:Net.Link.lan_1gbe ~bytes:(1024 * 1024) ())))

(* Fig 4: one small end-to-end migration. *)
let test_fig4 =
  Test.make ~name:"fig4/migrate-8MB-idle"
    (Staged.stage (fun () ->
         let config = { (Vmm.Qemu_config.default ~name:"guest0") with Vmm.Qemu_config.memory_mb = 8 } in
         let mp =
           Vmm.Layers.migration_pair ~ksm_config:Memory.Ksm.default_config ~config
             ~nested_dest:false (Sim.Ctx.create ())
         in
         match
           Migration.Precopy.migrate mp.Vmm.Layers.mp_ctx ~source:mp.Vmm.Layers.mp_source
             ~dest:mp.Vmm.Layers.mp_dest ()
         with
         | Ok _ -> ()
         | Error e -> failwith e))

(* Tables II-IV: pricing every lmbench row at every level. *)
let test_lmbench =
  Test.make ~name:"table2-4/lmbench-pricing"
    (Staged.stage (fun () ->
         List.iter
           (fun level ->
             List.iter
               (fun (_, op) -> ignore (Vmm.Cost_model.cost_ns ~level op))
               (Workload.Lmbench.arithmetic @ Workload.Lmbench.processes))
           [ Vmm.Level.l0; Vmm.Level.l1; Vmm.Level.l2 ]))

(* Figs 5-6: one 100-page write probe against a half-merged buffer. *)
let test_fig56 =
  Test.make ~name:"fig5-6/write-probe-100-pages"
    (Staged.stage (fun () ->
         let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
         let a = Memory.Address_space.create_root ft ~name:"a" ~pages:100 in
         let b = Memory.Address_space.create_root ft ~name:"b" ~pages:100 in
         for i = 0 to 99 do
           let c = Memory.Page.Content.of_int i in
           ignore (Memory.Address_space.write a i c);
           if i mod 2 = 0 then begin
             ignore (Memory.Address_space.write b i c);
             Memory.Address_space.remap b i (Memory.Address_space.frame_at a i)
           end
         done;
         let rng = Sim.Rng.create 1 in
         ignore (Memory.Write_probe.probe ~rng b ~offset:0 ~pages:100)))

(* Installation: KSM scanning one wakeup over a registered VM. *)
let test_install =
  Test.make ~name:"install/ksm-wakeup-4096-pages"
    (Staged.stage (fun () ->
         let ctx = Sim.Ctx.create () in
         let ft = Memory.Frame_table.create ctx in
         let ksm = Memory.Ksm.create ~config:Memory.Ksm.fast_config ctx ft in
         let s = Memory.Address_space.create_root ft ~name:"s" ~pages:4096 in
         Memory.Ksm.register ksm s;
         Memory.Ksm.scan_once ksm))

(* The KSM scan hot path at multi-tenant scale: 64 registered spaces of
   256 distinct pages each (16k pages), steady state - the population
   abl-density's host sees. Setup is hoisted so the benchmark times only
   [scan_once] wakeups. *)
let ksm_scan_world () =
  let ctx = Sim.Ctx.create () in
  let ft = Memory.Frame_table.create ctx in
  let ksm = Memory.Ksm.create ~config:Memory.Ksm.fast_config ctx ft in
  for k = 0 to 63 do
    let s = Memory.Address_space.create_root ft ~name:(Printf.sprintf "s%d" k) ~pages:256 in
    for i = 0 to 255 do
      ignore (Memory.Address_space.write s i (Memory.Page.Content.of_int ((k * 256) + i)))
    done;
    Memory.Ksm.register ksm s
  done;
  for _ = 1 to 4 do
    Memory.Ksm.scan_once ksm
  done;
  ksm

let test_ksm_scan_hot =
  let ksm = ksm_scan_world () in
  Test.make ~name:"perf/ksm-scan-once-64x256"
    (Staged.stage (fun () -> Memory.Ksm.scan_once ksm))

(* Dirty-bitmap iteration, 64k pages at 1 % dirty: what each pre-copy
   round's bookkeeping walks. *)
let dirty_wordscan_world () =
  let n = 65536 in
  let d = Memory.Dirty.create n in
  let r = Sim.Rng.create 7 in
  for _ = 1 to n / 100 do
    Memory.Dirty.set d (Sim.Rng.int r n)
  done;
  d

let test_dirty_iter =
  let d = dirty_wordscan_world () in
  Test.make ~name:"perf/dirty-fold-64k-sparse"
    (Staged.stage (fun () -> ignore (Memory.Dirty.fold_dirty d (fun acc i -> acc + i) 0)))

(* The event queue's steady-state regime at low and high occupancy,
   plus the binary-heap reference at high occupancy for comparison.
   Each run is one schedule+expire pair on a persistent prefilled
   queue (see Event_bench.steady_state_op). *)
let test_event_queue_1e3 =
  let op = Event_bench.steady_state_op Event_bench.wheel ~pending:1_000 in
  Test.make ~name:"event_queue/schedule-expire-1e3-pending" (Staged.stage op)

let test_event_queue_1e5 =
  let op = Event_bench.steady_state_op Event_bench.wheel ~pending:100_000 in
  Test.make ~name:"event_queue/schedule-expire-1e5-pending" (Staged.stage op)

let test_event_heap_1e5 =
  let op = Event_bench.steady_state_op Event_bench.heap ~pending:100_000 in
  Test.make ~name:"event_queue/heap-reference-1e5-pending" (Staged.stage op)

(* The quantile sketch's two hot operations: streaming inserts (every
   telemetry summary record) and the O(centroids) merge the --jobs
   fan-in performs per summary series. *)
let sketch_samples n = Array.init n (fun i -> float_of_int ((i * 2654435761) land 0xFFFFF))

let test_sketch_add =
  let xs = sketch_samples 4096 in
  Test.make ~name:"slo/sketch-add-4096"
    (Staged.stage (fun () ->
         let sk = Sim.Stats.Sketch.create () in
         Array.iter (Sim.Stats.Sketch.add sk) xs))

let test_sketch_merge =
  let src =
    let sk = Sim.Stats.Sketch.create () in
    Array.iter (Sim.Stats.Sketch.add sk) (sketch_samples 4096);
    sk
  in
  (* one persistent aggregate, like the per-series --jobs fan-in: the
     merge itself is O(centroids) with no allocation *)
  let into = Sim.Stats.Sketch.create () in
  Test.make ~name:"slo/sketch-merge-4096-into-aggregate"
    (Staged.stage (fun () -> Sim.Stats.Sketch.merge_into ~into src))

(* A whole (tiny) fleet end to end on the sharded runner: 2 hosts of
   2 VMs for 2 simulated minutes, mailboxes and barriers included -
   tracks the fixed cost of the partitioned engine around the hosts. *)
let test_fleet_small =
  Test.make ~name:"fleet/run-2-hosts-2min-2-shards"
    (Staged.stage (fun () ->
         let spec =
           {
             Fleet.Spec.default with
             Fleet.Spec.hosts = 2;
             racks = 1;
             tenants_per_host = 1;
             duration = Sim.Time.minutes 2.;
           }
         in
         ignore (Fleet.World.run ~jobs:1 ~shards:2 (Sim.Ctx.create ~seed:42 ()) spec)))

(* The parallel trial runner: fan 8 small self-contained engine trials
   over 2 domains (spawn + join dominate; the point is to track that
   fan-out overhead stays in the low milliseconds). *)
let test_parallel_runner =
  Test.make ~name:"perf/parallel-map-8-trials-2-jobs"
    (Staged.stage (fun () ->
         ignore
           (Sim.Parallel.map_seeds ~jobs:2 ~root_seed:1 ~trials:8 (fun ~seed ->
                let ctx = Sim.Ctx.create ~seed () in
                ignore (Net.Flow.run ctx ~link:Net.Link.lan_1gbe ~bytes:65536 ())))))

let tests =
  Test.make_grouped ~name:"cloudskulk"
    [
      test_table1;
      test_fig2;
      test_fig3;
      test_fig4;
      test_lmbench;
      test_fig56;
      test_install;
      test_ksm_scan_hot;
      test_dirty_iter;
      test_event_queue_1e3;
      test_event_queue_1e5;
      test_event_heap_1e5;
      test_sketch_add;
      test_sketch_merge;
      test_fleet_small;
      test_parallel_runner;
    ]

(* Direct allocation/throughput record for the two overhauled hot paths,
   written as BENCH_scan.json next to the transcript. The [seed_baseline]
   constants were measured on the pre-overhaul implementation (commit
   fd7c5d8) with the identical workload, so the file is a standing
   before/after record. *)
let scan_report () =
  let ksm = ksm_scan_world () in
  let iters = 100 in
  let pages = float_of_int (iters * 4096) in
  let w0 = Gc.minor_words () in
  (* skulklint: allow wall-clock — times the simulator itself (host CPU seconds), not simulated work *)
  let t0 = Sys.time () in
  for _ = 1 to iters do
    Memory.Ksm.scan_once ksm
  done;
  (* skulklint: allow wall-clock — closes the host-clock interval opened above *)
  let scan_s = Sys.time () -. t0 in
  let scan_words = (Gc.minor_words () -. w0) /. pages in
  let scan_ns = scan_s *. 1e9 /. pages in
  let d = dirty_wordscan_world () in
  let dirty_iters = 2000 in
  let dirty_pages = float_of_int (dirty_iters * Memory.Dirty.length d) in
  (* skulklint: allow wall-clock — times the simulator itself (host CPU seconds), not simulated work *)
  let t1 = Sys.time () in
  let sink = ref 0 in
  for _ = 1 to dirty_iters do
    sink := Memory.Dirty.fold_dirty d (fun acc i -> acc + i) !sink
  done;
  (* skulklint: allow wall-clock — closes the host-clock interval opened above *)
  let dirty_ns = (Sys.time () -. t1) *. 1e9 /. dirty_pages in
  (* Event-engine record: the heap rows are measured live (Event_heap is
     the pre-overhaul implementation, preserved in-tree as the reference
     oracle), so the wheel-vs-heap speedup is an apples-to-apples number
     from the same machine and build. *)
  let q_ops = 1_000_000 in
  let wheel_1e3 = Event_bench.queue_ns_per_op Event_bench.wheel ~pending:1_000 ~ops:q_ops in
  let heap_1e3 = Event_bench.queue_ns_per_op Event_bench.heap ~pending:1_000 ~ops:q_ops in
  let wheel_1e5 = Event_bench.queue_ns_per_op Event_bench.wheel ~pending:100_000 ~ops:q_ops in
  let heap_1e5 = Event_bench.queue_ns_per_op Event_bench.heap ~pending:100_000 ~ops:q_ops in
  let rescan_full = Event_bench.ksm_rescan_ns_per_dirtied_page ~incremental:false ~iters:200 in
  let rescan_incr = Event_bench.ksm_rescan_ns_per_dirtied_page ~incremental:true ~iters:200 in
  (* Quantile-sketch hot paths: streaming insert and the per-series
     merge the --jobs fan-in performs (one persistent aggregate); best
     of 3 runs, like the event queue numbers above. Compact first: the
     sketch paths allocate major-heap float arrays, so leftover live
     data from the bechamel table would otherwise bill its GC slices to
     this section (this section has no seed baseline to stay
     comparable with, unlike the ksm/dirty numbers above). *)
  Gc.compact ();
  let best_of3 f =
    let best = ref (f ()) in
    for _ = 2 to 3 do
      let v = f () in
      if v < !best then best := v
    done;
    !best
  in
  let sk_xs = sketch_samples 65536 in
  let sketch_add_ns =
    best_of3 (fun () ->
        let sk = Sim.Stats.Sketch.create () in
        let passes = 10 in
        (* skulklint: allow wall-clock — times the simulator itself (host CPU seconds), not simulated work *)
        let t = Sys.time () in
        for _ = 1 to passes do
          Array.iter (Sim.Stats.Sketch.add sk) sk_xs
        done;
        (* skulklint: allow wall-clock — closes the host-clock interval opened above *)
        (Sys.time () -. t) *. 1e9 /. float_of_int (passes * Array.length sk_xs))
  in
  let sk_src =
    let s = Sim.Stats.Sketch.create () in
    Array.iter (Sim.Stats.Sketch.add s) (sketch_samples 4096);
    s
  in
  let merge_iters = 50_000 in
  let sk_agg = Sim.Stats.Sketch.create () in
  let sketch_merge_ns =
    best_of3 (fun () ->
        (* skulklint: allow wall-clock — times the simulator itself (host CPU seconds), not simulated work *)
        let t = Sys.time () in
        for _ = 1 to merge_iters do
          Sim.Stats.Sketch.merge_into ~into:sk_agg sk_src
        done;
        (* skulklint: allow wall-clock — closes the host-clock interval opened above *)
        (Sys.time () -. t) *. 1e9 /. float_of_int merge_iters)
  in
  (* Fleet throughput at datacenter sizes, sharded vs single-shard.
     The sharded runs take jobs = 0 (all cores), so the speedup is the
     machine's real delivery - on a single-core container it documents
     sharding overhead (~1.0x), and "cores" is recorded next to it so
     the number can be read honestly. *)
  let cores = Sim.Parallel.available_cores () in
  let fleet_1k_1 =
    Fleet_bench.measure ~repeats:3 ~hosts:125 ~tenants:7 ~minutes:30. ~shards:1 ~jobs:1 ()
  in
  let fleet_1k_4 =
    Fleet_bench.measure ~repeats:3 ~hosts:125 ~tenants:7 ~minutes:30. ~shards:4 ~jobs:0 ()
  in
  let fleet_10k_1 =
    Fleet_bench.measure ~repeats:2 ~hosts:1250 ~tenants:7 ~minutes:10. ~shards:1 ~jobs:1 ()
  in
  let fleet_10k_4 =
    Fleet_bench.measure ~repeats:2 ~hosts:1250 ~tenants:7 ~minutes:10. ~shards:4 ~jobs:0 ()
  in
  let json =
    Printf.sprintf
      {|{
  "workload": {
    "ksm_scan": "scan_once, 64 spaces x 256 distinct pages (16384 pages), fast config",
    "dirty_fold": "fold_dirty over 65536 pages at 1%% dirty",
    "event_queue": "steady-state schedule+expire pairs at fixed occupancy; replacement deltas drawn from the engine period mix (90%% <=1ms packet-scale, 9%% <=100ms device-scale, 1%% <=10s housekeeping), best of 3 runs",
    "ksm_rescan": "steady-state wakeups over the 16384-page population with ~1%% (164 pages) dirtied between wakeups; cost normalised per dirtied page",
    "sketch": "Stats.Sketch (compression 128): streaming adds of 65536-value cycles; merge_into of a 4096-sample sketch into a persistent aggregate",
    "fleet": "Fleet.World.run, default churn/infection knobs: 125 hosts x 8 VMs for 30 sim-minutes (1k VMs) and 1250 hosts x 8 VMs for 10 sim-minutes (10k VMs); sharded runs use 4 shards with jobs=0 (all cores); best of N"
  },
  "seed_baseline": {
    "ksm_scan_minor_words_per_page": 83.02,
    "ksm_scan_ns_per_page": 543.5,
    "dirty_iter_ns_per_page": 4.21
  },
  "current": {
    "ksm_scan_minor_words_per_page": %.2f,
    "ksm_scan_ns_per_page": %.1f,
    "dirty_iter_ns_per_page": %.2f
  },
  "events_per_sec": {
    "heap_reference_1e3_pending": %.0f,
    "heap_reference_1e5_pending": %.0f,
    "wheel_1e3_pending": %.0f,
    "wheel_1e5_pending": %.0f,
    "wheel_speedup_1e5_pending": %.2f
  },
  "ksm_rescan_ns_per_page": {
    "full_sweep_per_dirtied_page": %.1f,
    "incremental_per_dirtied_page": %.1f,
    "incremental_speedup": %.2f
  },
  "sketch": {
    "add_ns_per_sample": %.1f,
    "merge_ns_per_4096_sample_sketch": %.0f
  },
  "fleet": {
    "cores": %d,
    "vm1k": {
      "vms": %d,
      "events": %d,
      "single_shard_events_per_sec": %.0f,
      "single_shard_ns_per_vm_minute": %.0f,
      "sharded_events_per_sec": %.0f,
      "sharded_ns_per_vm_minute": %.0f,
      "sharded_speedup": %.2f
    },
    "vm10k": {
      "vms": %d,
      "events": %d,
      "single_shard_events_per_sec": %.0f,
      "single_shard_ns_per_vm_minute": %.0f,
      "sharded_events_per_sec": %.0f,
      "sharded_ns_per_vm_minute": %.0f,
      "sharded_speedup": %.2f
    }
  }
}
|}
      scan_words scan_ns dirty_ns (1e9 /. heap_1e3) (1e9 /. heap_1e5) (1e9 /. wheel_1e3)
      (1e9 /. wheel_1e5) (heap_1e5 /. wheel_1e5) rescan_full rescan_incr
      (rescan_full /. rescan_incr) sketch_add_ns sketch_merge_ns cores
      fleet_1k_1.Fleet_bench.m_vms fleet_1k_1.Fleet_bench.m_events
      (Fleet_bench.events_per_sec fleet_1k_1)
      (Fleet_bench.ns_per_vm_minute fleet_1k_1)
      (Fleet_bench.events_per_sec fleet_1k_4)
      (Fleet_bench.ns_per_vm_minute fleet_1k_4)
      (fleet_1k_1.Fleet_bench.m_wall_s /. fleet_1k_4.Fleet_bench.m_wall_s)
      fleet_10k_1.Fleet_bench.m_vms fleet_10k_1.Fleet_bench.m_events
      (Fleet_bench.events_per_sec fleet_10k_1)
      (Fleet_bench.ns_per_vm_minute fleet_10k_1)
      (Fleet_bench.events_per_sec fleet_10k_4)
      (Fleet_bench.ns_per_vm_minute fleet_10k_4)
      (fleet_10k_1.Fleet_bench.m_wall_s /. fleet_10k_4.Fleet_bench.m_wall_s)
  in
  let oc = open_out "BENCH_scan.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\n  hot-path record (BENCH_scan.json): ksm scan %.2f minor words/page (seed: 83.02), \
     %.1f ns/page (seed: 543.5); dirty fold %.2f ns/page (seed: 4.21)\n"
    scan_words scan_ns dirty_ns;
  Printf.printf
    "  event queue at 1e5 pending: wheel %.0f ns/op vs heap %.0f ns/op (%.2fx); ksm rescan \
     %.1f -> %.1f ns/dirtied page (%.2fx)\n"
    wheel_1e5 heap_1e5 (heap_1e5 /. wheel_1e5) rescan_full rescan_incr
    (rescan_full /. rescan_incr);
  Printf.printf "  quantile sketch: add %.1f ns/sample; merge of a 4096-sample sketch %.0f ns\n"
    sketch_add_ns sketch_merge_ns;
  Printf.printf
    "  fleet (on %d core%s): 1k VMs %.2fs -> %.0f events/s; 10k VMs %.2fs -> %.0f events/s; \
     4-shard speedup %.2fx / %.2fx\n"
    cores
    (if cores = 1 then "" else "s")
    fleet_1k_1.Fleet_bench.m_wall_s
    (Fleet_bench.events_per_sec fleet_1k_1)
    fleet_10k_1.Fleet_bench.m_wall_s
    (Fleet_bench.events_per_sec fleet_10k_1)
    (fleet_1k_1.Fleet_bench.m_wall_s /. fleet_1k_4.Fleet_bench.m_wall_s)
    (fleet_10k_1.Fleet_bench.m_wall_s /. fleet_10k_4.Fleet_bench.m_wall_s);
  ignore !sink

let run () =
  Bench_util.section "Bechamel: simulator micro-benchmarks (real wall-clock)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let sorted =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> Printf.sprintf "%.0f ns/run" e
          | Some [] | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; est; r2 ] :: acc)
      results []
    |> List.sort (fun a b -> String.compare (List.hd a) (List.hd b))
  in
  Bench_util.table ~header:[ "benchmark"; "estimate"; "r^2" ] ~rows:sorted;
  scan_report ()

let spec =
  Harness.Experiment.make ~id:"bechamel" ~doc:"Bechamel simulator micro-benchmarks"
    (fun _ -> run ())
