(* Shared measurements for the event-engine overhaul: timing-wheel vs
   binary-heap queue throughput, and incremental vs full KSM rescan
   cost. Consumed twice - by the bechamel experiment (which also writes
   the BENCH_scan.json record) and by the queue_bench CI smoke
   executable, so both report the same workloads. *)

module type QUEUE = sig
  type 'a t
  type handle

  val create : unit -> 'a t
  val push : 'a t -> Sim.Time.t -> 'a -> handle
  val pop : 'a t -> (Sim.Time.t * 'a) option
end

let wheel = (module Sim.Event_queue : QUEUE)
let heap = (module Sim.Event_heap : QUEUE)

(* Timer periods drawn from the mix a loaded engine actually schedules:
   overwhelmingly packet-scale work (burst serialisations, link
   latencies - the only way occupancy ever reaches 1e5), a slice of
   device-scale timers (KSM wakeups, migration rounds), and a tail of
   long housekeeping timers that exercises the outer wheel levels. *)
let engine_mix_delta rng =
  let p = Sim.Rng.int rng 100 in
  if p < 90 then Sim.Rng.int rng 1_000_000 (* <= 1ms: packet scale *)
  else if p < 99 then Sim.Rng.int rng 100_000_000 (* <= 100ms: device scale *)
  else Sim.Rng.int rng 10_000_000_000 (* <= 10s: housekeeping *)

(* A thunk performing one steady-state operation on a queue prefilled
   to [pending] events: expire the earliest event and schedule a
   replacement drawn from the engine period mix - the regime an engine
   main loop lives in, where occupancy stays flat and the horizon
   advances. The replacement deltas are precomputed into a ring so the
   timed loop measures the queues, not the RNG. *)
let steady_state_op (module Q : QUEUE) ~pending =
  let q = Q.create () in
  let rng = Sim.Rng.create 11 in
  for i = 0 to pending - 1 do
    ignore (Q.push q (Sim.Time.ns (engine_mix_delta rng)) i)
  done;
  let ring = Array.init 65536 (fun _ -> Sim.Time.ns (engine_mix_delta rng)) in
  let k = ref 0 in
  let i = ref pending in
  fun () ->
    match Q.pop q with
    | None -> assert false
    | Some (t, _) ->
      incr i;
      let d = ring.(!k land 65535) in
      incr k;
      ignore (Q.push q (Sim.Time.add t d) !i)

(* ns per schedule+expire pair at a fixed occupancy; best of [repeats]
   fresh runs, so one scheduler hiccup on a shared machine does not end
   up in the recorded figure. *)
let queue_ns_per_op ?(repeats = 3) qm ~pending ~ops =
  let once () =
    let op = steady_state_op qm ~pending in
    (* skulklint: allow wall-clock — times the simulator itself (host CPU seconds), not simulated work *)
    let t0 = Sys.time () in
    for _ = 1 to ops do
      op ()
    done;
    (* skulklint: allow wall-clock — closes the host-clock interval opened above *)
    (Sys.time () -. t0) *. 1e9 /. float_of_int ops
  in
  let best = ref (once ()) in
  for _ = 2 to repeats do
    let ns = once () in
    if ns < !best then best := ns
  done;
  !best

let events_per_sec ns_per_op = 1e9 /. ns_per_op

(* The multi-tenant KSM population the bechamel suite also scans: 64
   spaces x 256 distinct pages, scanned to steady state. *)
let ksm_world ~incremental =
  let ctx = Sim.Ctx.create () in
  let ft = Memory.Frame_table.create ctx in
  let config =
    { Memory.Ksm.pages_to_scan = 16384; sleep = Sim.Time.ms 1.; incremental }
  in
  let ksm = Memory.Ksm.create ~config ctx ft in
  let spaces =
    Array.init 64 (fun k ->
        let s =
          Memory.Address_space.create_root ft ~name:(Printf.sprintf "s%d" k) ~pages:256
        in
        for i = 0 to 255 do
          ignore (Memory.Address_space.write s i (Memory.Page.Content.of_int ((k * 256) + i)))
        done;
        Memory.Ksm.register ksm s;
        s)
  in
  for _ = 1 to 4 do
    Memory.Ksm.scan_once ksm
  done;
  (ksm, spaces)

(* Steady-state rescan: dirty ~1% of the table between wakeups, then
   take one scan_once. Returns ns per dirtied page; the full sweep
   walks all 16384 pages per wakeup (cached checksums, but every page
   visited), the incremental sweep only the dirtied ones, so the ratio
   is the O(table) -> O(dirtied) win. The loop also pays for the writes
   themselves - identical in both modes. *)
let ksm_rescan_ns_per_dirtied_page ~incremental ~iters =
  let ksm, spaces = ksm_world ~incremental in
  let rng = Sim.Rng.create 23 in
  let dirtied_per_iter = 164 in
  let stamp = ref 1_000_000 in
  (* skulklint: allow wall-clock — times the simulator itself (host CPU seconds), not simulated work *)
  let t0 = Sys.time () in
  for _ = 1 to iters do
    for _ = 1 to dirtied_per_iter do
      let s = spaces.(Sim.Rng.int rng 64) in
      incr stamp;
      ignore
        (Memory.Address_space.write s (Sim.Rng.int rng 256)
           (Memory.Page.Content.of_int !stamp))
    done;
    Memory.Ksm.scan_once ksm
  done;
  (* skulklint: allow wall-clock — closes the host-clock interval opened above *)
  (Sys.time () -. t0) *. 1e9 /. float_of_int (iters * dirtied_per_iter)
